"""Typed JSON codecs for protocol v2 of the distributed index server.

:mod:`repro.distributed.protocol` moves the sync protocol's messages as tagged
tuples; this module is the explicit schema that turns each of them into a
plain JSON object and back — the half of protocol v2 that replaces pickle.
Every payload the campaign ships (embeddings, shard specs, hourly samples, bug
incidents, budget vectors) has a dedicated encoder/decoder pair, and decoding
*validates*: a field of the wrong type, a missing key or an unknown verb
raises :class:`~repro.errors.ProtocolError` instead of surfacing later as an
``AttributeError`` deep inside the coordinator.

Fidelity matters more than compactness here: the distributed determinism
contract says a TCP campaign must be bit-identical to the in-process pool, so
the codecs must round-trip every value exactly.  Floats survive because
``json`` serializes them via ``repr`` (shortest round-tripping form); tuples
are restored where the in-memory types use tuples (``fired_bug_ids``, index
entries); and dataclasses are rebuilt field by field so ``==`` holds across
one encode/decode cycle.

The imports of campaign/parallel dataclasses are deferred into the decoders:
:mod:`repro.core.parallel` imports this package's protocol module, so a
module-level import here would be a cycle.
"""

from __future__ import annotations

import base64
import math
import sys
from array import array
from typing import Any, Dict, List, NoReturn, Optional, Sequence, Tuple

from repro.distributed.protocol import (
    ABORT,
    BROADCAST,
    ERROR,
    HELLO,
    HELLO_OK,
    OK,
    REGISTER,
    REGISTERED,
    REPORT,
    SHUTDOWN,
    STATS,
    STATS_OK,
    SYNC,
    TICK,
    IndexEntry,
    SyncBroadcast,
)
from repro.errors import ProtocolError

_SAMPLE_FIELDS = (
    "hour",
    "queries_generated",
    "queries_executed",
    "isomorphic_sets",
    "bug_count",
    "bug_type_count",
    "generations_rejected",
)


# ---------------------------------------------------------------- validation


def _fail(where: str, detail: str) -> NoReturn:
    raise ProtocolError(f"invalid {where}: {detail}")


def _obj(value: Any, where: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        _fail(where, f"expected an object, got {type(value).__name__}")
    return value


def _get(obj: Dict[str, Any], key: str, where: str) -> Any:
    if key not in obj:
        _fail(where, f"missing field {key!r}")
    return obj[key]


def _int(value: Any, where: str) -> int:
    # bool is an int subclass; a true/false where a count belongs is a bug.
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(where, f"expected an integer, got {type(value).__name__}")
    return value


def _opt_int(value: Any, where: str) -> Optional[int]:
    return None if value is None else _int(value, where)


def _str(value: Any, where: str) -> str:
    if not isinstance(value, str):
        _fail(where, f"expected a string, got {type(value).__name__}")
    return value


def _opt_str(value: Any, where: str) -> Optional[str]:
    return None if value is None else _str(value, where)


def _bool(value: Any, where: str) -> bool:
    if not isinstance(value, bool):
        _fail(where, f"expected a boolean, got {type(value).__name__}")
    return value


def _float(value: Any, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(where, f"expected a number, got {type(value).__name__}")
    return float(value)


def _list(value: Any, where: str) -> List[Any]:
    if not isinstance(value, list):
        _fail(where, f"expected an array, got {type(value).__name__}")
    return value


def _int_field(obj: Dict[str, Any], key: str, where: str) -> int:
    return _int(_get(obj, key, where), f"{where} {key}")


def _str_field(obj: Dict[str, Any], key: str, where: str) -> str:
    return _str(_get(obj, key, where), f"{where} {key}")


def _float_field(obj: Dict[str, Any], key: str, where: str) -> float:
    return _float(_get(obj, key, where), f"{where} {key}")


# ------------------------------------------------------------ payload codecs


def encode_entries(entries: Sequence[IndexEntry]) -> List[List[Any]]:
    """Index entries as ``[[vector, label], ...]``."""
    return [[list(vector), label] for vector, label in entries]


#: A packed entry batch bigger than this is a corrupt or hostile length pair,
#: never a real sync round; checked *before* any base64 or array allocation.
MAX_PACKED_FLOATS = 32 * 1024 * 1024


def encode_entries_packed(entries: Sequence[IndexEntry]) -> Dict[str, Any]:
    """Index entries as one base64 little-endian float32 blob + label list.

    Embeddings are float32-quantized at the ship boundary
    (:meth:`repro.kqe.store.EntryBatch.to_wire`), so the float32 re-encode
    here is exact.  Requires a rectangular batch (one embedder, one
    dimensionality — every real sync round); raggedness is a caller bug.
    """
    labels: List[str] = []
    values = array("f")
    dims = len(entries[0][0]) if entries else 0
    for vector, label in entries:
        if len(vector) != dims:
            _fail(
                "packed index entries",
                f"ragged batch: expected {dims}-component vectors, "
                f"got {len(vector)}",
            )
        values.extend(vector)
        labels.append(label)
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI leg
        values.byteswap()
    return {
        "packed": 1,
        "count": len(labels),
        "dims": dims,
        "data": base64.b64encode(values.tobytes()).decode("ascii"),
        "labels": labels,
    }


def decode_entries_packed(value: Any, where: str = "index entries") -> List[IndexEntry]:
    obj = _obj(value, where)
    if obj.get("packed") != 1:
        _fail(where, f"unknown packed-batch version {obj.get('packed')!r}")
    count = _int(_get(obj, "count", where), f"{where} count")
    dims = _int(_get(obj, "dims", where), f"{where} dims")
    data = _str(_get(obj, "data", where), f"{where} data")
    labels = _list(_get(obj, "labels", where), f"{where} labels")
    # Every length is validated against every other *before* any allocation:
    # a forged count/dims pair must neither balloon memory nor silently
    # truncate, and the base64 text length must match the claimed blob size
    # exactly (base64 encodes 3 bytes per 4 characters, padded).
    if count < 0 or dims < 0 or count * dims > MAX_PACKED_FLOATS:
        _fail(where, f"implausible packed batch shape {count}x{dims}")
    if len(labels) != count:
        _fail(where, f"{len(labels)} labels for {count} packed vectors")
    blob_bytes = count * dims * 4
    expected_chars = 4 * ((blob_bytes + 2) // 3)
    if len(data) != expected_chars:
        _fail(
            where,
            f"packed blob is {len(data)} base64 chars, expected "
            f"{expected_chars} for {count}x{dims} float32s",
        )
    try:
        blob = base64.b64decode(data, validate=True)
    except (ValueError, TypeError) as exc:
        _fail(where, f"packed blob is not valid base64: {exc}")
    if len(blob) != blob_bytes:
        _fail(where, f"packed blob decoded to {len(blob)} bytes, not {blob_bytes}")
    values = array("f")
    values.frombytes(blob)
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI leg
        values.byteswap()
    flat = values.tolist()
    for component in flat:
        if not math.isfinite(component):
            _fail(where, "packed vector component is not finite")
    label_names = [_str(label, f"{where} label") for label in labels]
    return [
        (flat[row * dims : (row + 1) * dims], label_names[row])
        for row in range(count)
    ]


def decode_entries(value: Any, where: str = "index entries") -> List[IndexEntry]:
    # Self-describing on the wire: protocol >= 3 peers ship the packed object
    # form, v2 peers the legacy pair-list form; both decode here so mixed
    # fleets interoperate.
    if isinstance(value, dict):
        return decode_entries_packed(value, where)
    entries: List[IndexEntry] = []
    for pair in _list(value, where):
        pair = _list(pair, f"{where} entry")
        if len(pair) != 2:
            _fail(where, f"entry must be a [vector, label] pair, got {len(pair)}")
        vector = _list(pair[0], f"{where} vector")
        entries.append(
            (
                [_float(x, f"{where} vector component") for x in vector],
                _str(pair[1], f"{where} label"),
            )
        )
    return entries


def _encode_entry_payload(
    entries: Sequence[IndexEntry], packed: bool
) -> Any:
    return encode_entries_packed(entries) if packed else encode_entries(entries)


def encode_broadcast(
    broadcast: SyncBroadcast, packed_entries: bool = False
) -> Dict[str, Any]:
    return {
        "entries": _encode_entry_payload(broadcast.entries, packed_entries),
        "suppressed": broadcast.suppressed,
        "next_budget": broadcast.next_budget,
    }


def decode_broadcast(value: Any) -> SyncBroadcast:
    obj = _obj(value, "sync broadcast")
    where = "sync broadcast"
    return SyncBroadcast(
        entries=decode_entries(_get(obj, "entries", where), f"{where} entries"),
        suppressed=_int_field(obj, "suppressed", where),
        next_budget=_opt_int(_get(obj, "next_budget", where), f"{where} next_budget"),
    )


def encode_campaign_config(config: Any) -> Dict[str, Any]:
    return {
        "dataset": config.dataset,
        "dataset_rows": config.dataset_rows,
        "hours": config.hours,
        "queries_per_hour": config.queries_per_hour,
        "seed": config.seed,
        "use_noise": config.use_noise,
        "use_ground_truth": config.use_ground_truth,
        "use_kqe": config.use_kqe,
        "max_hint_sets": config.max_hint_sets,
        "reference_executor": config.reference_executor,
        "use_query_cache": config.use_query_cache,
        "setop_probability": config.setop_probability,
        "scalar_subquery_probability": config.scalar_subquery_probability,
        "cte_probability": config.cte_probability,
    }


def decode_campaign_config(value: Any) -> Any:
    from repro.core.campaign import CampaignConfig

    obj = _obj(value, "campaign config")
    where = "campaign config"
    return CampaignConfig(
        dataset=_str_field(obj, "dataset", where),
        dataset_rows=_int_field(obj, "dataset_rows", where),
        hours=_int_field(obj, "hours", where),
        queries_per_hour=_int_field(obj, "queries_per_hour", where),
        seed=_int_field(obj, "seed", where),
        use_noise=_bool(_get(obj, "use_noise", where), f"{where} use_noise"),
        use_ground_truth=_bool(
            _get(obj, "use_ground_truth", where), f"{where} use_ground_truth"
        ),
        use_kqe=_bool(_get(obj, "use_kqe", where), f"{where} use_kqe"),
        max_hint_sets=_opt_int(
            _get(obj, "max_hint_sets", where), f"{where} max_hint_sets"
        ),
        reference_executor=_str_field(obj, "reference_executor", where),
        use_query_cache=_bool(
            _get(obj, "use_query_cache", where), f"{where} use_query_cache"
        ),
        setop_probability=_float_field(obj, "setop_probability", where),
        scalar_subquery_probability=_float_field(
            obj, "scalar_subquery_probability", where
        ),
        cte_probability=_float_field(obj, "cte_probability", where),
    )


def encode_shard_spec(spec: Any) -> Dict[str, Any]:
    return {
        "shard_id": spec.shard_id,
        "kind": spec.kind,
        "config": encode_campaign_config(spec.config),
        "dialect": spec.dialect,
        "baseline": spec.baseline,
        "backend": spec.backend,
        "batch_size": spec.batch_size,
    }


def decode_shard_spec(value: Any) -> Any:
    from repro.core.parallel import ShardSpec

    obj = _obj(value, "shard spec")
    where = "shard spec"
    return ShardSpec(
        shard_id=_int_field(obj, "shard_id", where),
        kind=_str_field(obj, "kind", where),
        config=decode_campaign_config(_get(obj, "config", where)),
        dialect=_str_field(obj, "dialect", where),
        baseline=_str_field(obj, "baseline", where),
        backend=_str_field(obj, "backend", where),
        batch_size=_int_field(obj, "batch_size", where),
    )


def encode_sample(sample: Any) -> Dict[str, Any]:
    return {name: getattr(sample, name) for name in _SAMPLE_FIELDS}


def decode_sample(value: Any) -> Any:
    from repro.core.campaign import HourlySample

    obj = _obj(value, "hourly sample")
    fields = {name: _int_field(obj, name, "hourly sample") for name in _SAMPLE_FIELDS}
    return HourlySample(**fields)


def encode_incident(incident: Any) -> Dict[str, Any]:
    return {
        "dbms": incident.dbms,
        "query_sql": incident.query_sql,
        "hint_name": incident.hint_name,
        "detection_mode": incident.detection_mode,
        "query_canonical_label": incident.query_canonical_label,
        "fired_bug_ids": list(incident.fired_bug_ids),
        "expected_rows": incident.expected_rows,
        "observed_rows": incident.observed_rows,
        "minimized_sql": incident.minimized_sql,
    }


def decode_incident(value: Any) -> Any:
    from repro.core.bug_report import BugIncident

    obj = _obj(value, "bug incident")
    where = "bug incident"
    fired = _list(_get(obj, "fired_bug_ids", where), f"{where} fired_bug_ids")
    return BugIncident(
        dbms=_str_field(obj, "dbms", where),
        query_sql=_str_field(obj, "query_sql", where),
        hint_name=_str_field(obj, "hint_name", where),
        detection_mode=_str_field(obj, "detection_mode", where),
        query_canonical_label=_str_field(obj, "query_canonical_label", where),
        fired_bug_ids=tuple(
            _int(bug_id, f"{where} fired_bug_ids element") for bug_id in fired
        ),
        expected_rows=_int_field(obj, "expected_rows", where),
        observed_rows=_int_field(obj, "observed_rows", where),
        minimized_sql=_opt_str(
            _get(obj, "minimized_sql", where), f"{where} minimized_sql"
        ),
    )


def encode_worker_report(report: Any, packed_entries: bool = False) -> Dict[str, Any]:
    return {
        "shard_id": report.shard_id,
        "tool": report.tool,
        "dbms": report.dbms,
        "dataset": report.dataset,
        "samples": [encode_sample(sample) for sample in report.samples],
        "hourly_new_labels": [list(labels) for labels in report.hourly_new_labels],
        "hourly_incidents": [
            [encode_incident(incident) for incident in incidents]
            for incidents in report.hourly_incidents
        ],
        "unsynced_entries": _encode_entry_payload(
            report.unsynced_entries, packed_entries
        ),
        "hourly_budgets": list(report.hourly_budgets),
        "entries_shipped": report.entries_shipped,
        "broadcast_entries_received": report.broadcast_entries_received,
        "broadcast_entries_suppressed": report.broadcast_entries_suppressed,
        "telemetry": encode_snapshot(report.telemetry),
    }


def decode_worker_report(value: Any) -> Any:
    from repro.core.parallel import WorkerReport

    obj = _obj(value, "worker report")
    where = "worker report"
    labels = [
        [_str(label, f"{where} label") for label in _list(hour, f"{where} labels")]
        for hour in _list(_get(obj, "hourly_new_labels", where), where)
    ]
    incidents = [
        [decode_incident(incident) for incident in _list(hour, f"{where} incidents")]
        for hour in _list(_get(obj, "hourly_incidents", where), where)
    ]
    budgets = _list(_get(obj, "hourly_budgets", where), f"{where} hourly_budgets")
    return WorkerReport(
        shard_id=_int_field(obj, "shard_id", where),
        tool=_str_field(obj, "tool", where),
        dbms=_str_field(obj, "dbms", where),
        dataset=_str_field(obj, "dataset", where),
        samples=[
            decode_sample(sample)
            for sample in _list(_get(obj, "samples", where), f"{where} samples")
        ],
        hourly_new_labels=labels,
        hourly_incidents=incidents,
        unsynced_entries=decode_entries(
            _get(obj, "unsynced_entries", where), f"{where} unsynced_entries"
        ),
        hourly_budgets=[_int(budget, f"{where} hourly budget") for budget in budgets],
        entries_shipped=_int_field(obj, "entries_shipped", where),
        broadcast_entries_received=_int_field(obj, "broadcast_entries_received", where),
        broadcast_entries_suppressed=_int_field(
            obj, "broadcast_entries_suppressed", where
        ),
        # Tolerate reports from peers predating the telemetry subsystem.
        telemetry=decode_snapshot(obj.get("telemetry"), f"{where} telemetry"),
    )


# --------------------------------------------------------- telemetry codecs


def _validate_snapshot(value: Any, where: str = "telemetry snapshot") -> Dict[str, Any]:
    """Validate one metrics-snapshot dict into its canonical wire form.

    The schema matches :meth:`repro.obs.MetricsSnapshot.to_dict`: integer
    counters, float gauges, and histograms as ``{bounds, counts, sum, count}``
    with one more count than bounds (the +Inf overflow bucket).
    """
    obj = _obj(value, where)
    counters = {
        _str(key, f"{where} counter name"): _int(val, f"{where} counter value")
        for key, val in _obj(_get(obj, "counters", where), f"{where} counters").items()
    }
    gauges = {
        _str(key, f"{where} gauge name"): _float(val, f"{where} gauge value")
        for key, val in _obj(_get(obj, "gauges", where), f"{where} gauges").items()
    }
    histograms: Dict[str, Any] = {}
    raw = _obj(_get(obj, "histograms", where), f"{where} histograms")
    for key, state in raw.items():
        name = _str(key, f"{where} histogram name")
        state_obj = _obj(state, f"{where} histogram {name!r}")
        bounds = [
            _float(bound, f"{where} histogram bound")
            for bound in _list(_get(state_obj, "bounds", where), f"{where} bounds")
        ]
        counts = [
            _int(count, f"{where} histogram bucket count")
            for count in _list(_get(state_obj, "counts", where), f"{where} counts")
        ]
        if len(counts) != len(bounds) + 1:
            _fail(where, f"histogram {name!r} needs len(bounds)+1 counts")
        histograms[name] = {
            "bounds": bounds,
            "counts": counts,
            "sum": _float(_get(state_obj, "sum", where), f"{where} histogram sum"),
            "count": _int(_get(state_obj, "count", where), f"{where} histogram count"),
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def encode_snapshot(value: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """A metrics snapshot dict for the wire (validated; None passes through)."""
    return None if value is None else _validate_snapshot(value)


def decode_snapshot(
    value: Any, where: str = "telemetry snapshot"
) -> Optional[Dict[str, Any]]:
    return None if value is None else _validate_snapshot(value, where)


def _json_safe(value: Any, where: str, depth: int = 0) -> Any:
    """Allow exactly the JSON value domain, with bounded nesting."""
    if depth > 12:
        _fail(where, "nesting too deep")
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    if isinstance(value, list):
        return [_json_safe(item, where, depth + 1) for item in value]
    if isinstance(value, dict):
        return {
            _str(key, f"{where} key"): _json_safe(item, where, depth + 1)
            for key, item in value.items()
        }
    _fail(where, f"unsupported type {type(value).__name__}")


def encode_stats(value: Any) -> Dict[str, Any]:
    """The STATS reply payload: an arbitrary (but JSON-only) stats object."""
    return _obj(_json_safe(value, "stats payload"), "stats payload")


def decode_stats(value: Any) -> Dict[str, Any]:
    return _obj(_json_safe(value, "stats payload"), "stats payload")


# ------------------------------------------------------------ message codecs


def encode_message(message: Any, packed_entries: bool = False) -> Dict[str, Any]:
    """One tagged-tuple protocol message as a JSON-ready object.

    With *packed_entries* (negotiated at protocol version >= 3) every index
    entry batch in the message rides as one base64 float32 blob instead of a
    per-float JSON array; decoding is self-describing either way.
    """
    if not isinstance(message, tuple) or not message:
        raise ProtocolError(f"cannot encode non-message {message!r}")
    verb = message[0]
    if verb == HELLO:
        return {"verb": verb, "version": message[1]}
    if verb == HELLO_OK:
        return {"verb": verb, "version": message[1], "nonce": message[2]}
    if verb == REGISTER:
        return {"verb": verb, "shard_id": message[1]}
    if verb == SYNC:
        obj = {
            "verb": verb,
            "shard_id": message[1],
            "hour": message[2],
            "entries": _encode_entry_payload(message[3], packed_entries),
        }
        # Optional telemetry piggyback; omitted entirely when absent so the
        # frame stays byte-identical to pre-telemetry campaigns.
        if len(message) > 4 and message[4] is not None:
            obj["telemetry"] = encode_snapshot(message[4])
        return obj
    if verb == TICK:
        return {"verb": verb, "shard_id": message[1]}
    if verb == REPORT:
        return {
            "verb": verb,
            "report": encode_worker_report(message[1], packed_entries),
        }
    if verb == ERROR:
        return {"verb": verb, "shard_id": message[1], "text": message[2]}
    if verb == SHUTDOWN:
        return {"verb": verb}
    if verb == STATS:
        return {"verb": verb}
    if verb == STATS_OK:
        return {"verb": verb, "stats": encode_stats(message[1])}
    if verb == REGISTERED:
        spec = message[1]
        return {
            "verb": verb,
            "spec": None if spec is None else encode_shard_spec(spec),
            "sync_hours": list(message[2]),
        }
    if verb == BROADCAST:
        return {
            "verb": verb,
            "broadcast": encode_broadcast(message[1], packed_entries),
        }
    if verb == OK:
        return {"verb": verb}
    if verb == ABORT:
        return {"verb": verb, "reason": message[1]}
    raise ProtocolError(f"cannot encode message with unknown verb {verb!r}")


def decode_message(obj: Any) -> Tuple[Any, ...]:
    """Validate one received JSON object back into its tagged tuple."""
    obj = _obj(obj, "protocol message")
    verb = _str(_get(obj, "verb", "protocol message"), "protocol verb")
    if verb == HELLO:
        return (verb, _int(_get(obj, "version", verb), "protocol version"))
    if verb == HELLO_OK:
        return (
            verb,
            _int(_get(obj, "version", verb), "protocol version"),
            _str(_get(obj, "nonce", verb), "handshake nonce"),
        )
    if verb == REGISTER:
        return (verb, _opt_int(_get(obj, "shard_id", verb), "register shard_id"))
    if verb == SYNC:
        base = (
            verb,
            _int(_get(obj, "shard_id", verb), "sync shard_id"),
            _int(_get(obj, "hour", verb), "sync hour"),
            decode_entries(_get(obj, "entries", verb), "sync entries"),
        )
        if obj.get("telemetry") is not None:
            return base + (decode_snapshot(obj["telemetry"], "sync telemetry"),)
        return base
    if verb == TICK:
        return (verb, _int(_get(obj, "shard_id", verb), "tick shard_id"))
    if verb == REPORT:
        return (verb, decode_worker_report(_get(obj, "report", verb)))
    if verb == ERROR:
        return (
            verb,
            _int(_get(obj, "shard_id", verb), "error shard_id"),
            _str(_get(obj, "text", verb), "error text"),
        )
    if verb == SHUTDOWN:
        return (verb,)
    if verb == STATS:
        return (verb,)
    if verb == STATS_OK:
        return (verb, decode_stats(_get(obj, "stats", verb)))
    if verb == REGISTERED:
        spec = _get(obj, "spec", verb)
        hours = _list(_get(obj, "sync_hours", verb), "registered sync_hours")
        return (
            verb,
            None if spec is None else decode_shard_spec(spec),
            [_int(hour, "registered sync hour") for hour in hours],
        )
    if verb == BROADCAST:
        return (verb, decode_broadcast(_get(obj, "broadcast", verb)))
    if verb == OK:
        return (verb,)
    if verb == ABORT:
        return (verb, _str(_get(obj, "reason", verb), "abort reason"))
    raise ProtocolError(f"unknown protocol verb {verb!r}")
