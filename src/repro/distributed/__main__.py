"""Entry point for ``python -m repro.distributed``."""

from repro.distributed.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
