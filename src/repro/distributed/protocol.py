"""Wire protocol of the distributed KQE index server.

The parallel campaign runner's synchronization protocol is bulk-synchronous and
transport-agnostic: workers ship batches of (embedding, canonical label) pairs
at hour boundaries and block until the coordinator broadcasts the other
workers' entries back.  This module pins down the TCP encoding of that
protocol: length-prefixed pickle frames carrying small tagged tuples.

Frame layout::

    +----------------+----------------------+
    | 4-byte big-    | pickled message      |
    | endian length  | (a tagged tuple)     |
    +----------------+----------------------+

Messages are plain tuples whose first element is one of the verb constants
below; payloads are stdlib/dataclass objects so both ends only need this
package importable.  Pickle is the right trade-off here: the index server is a
campaign-internal coordination service run on trusted hosts (the same trust
model as ``multiprocessing``'s own pickled queues), not an
internet-facing endpoint.
"""

from __future__ import annotations

import pickle
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import TransportError

# Serialized index entries: (embedding as a plain list, canonical label).
IndexEntry = Tuple[List[float], str]

# Client -> server verbs.
REGISTER = "register"
SYNC = "sync"
TICK = "tick"
REPORT = "report"
ERROR = "error"
SHUTDOWN = "shutdown"

# Server -> client replies.
REGISTERED = "registered"
BROADCAST = "broadcast"
OK = "ok"
ABORT = "abort"

# A frame bigger than this is a corrupt length prefix, not a real batch: even a
# pathological campaign ships a few thousand 64-float embeddings per round.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


@dataclass
class SyncBroadcast:
    """The coordinator's answer to one worker's sync: the other workers' news.

    ``entries`` is what the worker must fold into its local graph index;
    ``suppressed`` counts the entries the coordinator's novelty pruning held
    back because their canonical label was already known to this worker — the
    payload reduction the pruning buys, surfaced so it is measurable.
    ``next_budget`` is the budget policy's per-hour allocation for this worker
    from the next hour on (None when the campaign runs without budget
    rebalancing, i.e. keep the current budget).
    """

    entries: List[IndexEntry] = field(default_factory=list)
    suppressed: int = 0
    next_budget: Optional[int] = None


def send_frame(sock: socket.socket, message: Any) -> None:
    """Serialize *message* and write one length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES}); batch your entries"
        )
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; None on a clean EOF before the first byte."""
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:
            raise TransportError(
                f"receive timed out after {sock.gettimeout()}s"
            ) from exc
        except OSError as exc:
            raise TransportError(f"receive failed: {exc}") from exc
        if not chunk:
            if not chunks:
                return None
            raise TransportError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, allow_eof: bool = False) -> Any:
    """Read one frame; returns the message, or None on clean EOF if allowed."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        if allow_eof:
            return None
        raise TransportError("connection closed while waiting for a frame")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES}; corrupt stream?"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise TransportError("connection closed between header and payload")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise TransportError(f"cannot unpickle frame: {exc}") from exc


def request(sock: socket.socket, message: Any) -> Any:
    """One request/response round trip."""
    send_frame(sock, message)
    return recv_frame(sock)
