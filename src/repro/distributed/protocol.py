"""Wire protocols of the distributed KQE index server.

The parallel campaign runner's synchronization protocol is bulk-synchronous and
transport-agnostic: workers ship batches of (embedding, canonical label) pairs
at hour boundaries and block until the coordinator broadcasts the other
workers' entries back.  This module pins down the TCP encodings of that
protocol.  Two frame formats coexist behind the :class:`FrameCodec` interface:

**Protocol v2 (``json``, the default)** — versioned, authenticated, no pickle
on the wire::

    +-------+----------------+------------------+----------------------+
    | magic | 4-byte big-    | 32-byte HMAC-    | UTF-8 JSON message   |
    | TQS2  | endian length  | SHA256 tag       | (typed, wire.py)     |
    +-------+----------------+------------------+----------------------+

The tag authenticates ``magic || length || body`` under a shared secret, so a
frame cannot be forged, truncated or bit-flipped without detection; the body is
a typed JSON object whose schema lives in :mod:`repro.distributed.wire`.
Connections open with a HELLO / version-negotiation exchange
(:func:`client_handshake`), so mismatched peers fail with a clear error
instead of a corrupt stream.  The HELLO_OK reply carries a per-connection
server nonce that both ends mix into every subsequent tag
(:meth:`JsonFrameCodec.bind`), so a frame captured on one connection does not
authenticate on another — replay cannot kill a campaign.  Malformed or
unauthenticated input raises :class:`~repro.errors.ProtocolError` — servers
reject the connection and keep serving.

**Protocol v1 (``pickle``, legacy)** — length-prefixed pickle frames.  Pickle
deserialization executes arbitrary code, so this codec is only safe on trusted
hosts (the same trust model as ``multiprocessing``'s own pickled queues); a v2
server turns v1 clients away with a clean, v1-readable rejection instead of
unpickling anything.

Messages are plain tuples whose first element is one of the verb constants
below; payloads are stdlib/dataclass objects so both ends only need this
package importable.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import pickle
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import ProtocolError, TransportError

# Serialized index entries: (embedding as a plain list, canonical label).
IndexEntry = Tuple[List[float], str]

# Client -> server verbs.
HELLO = "hello"
REGISTER = "register"
SYNC = "sync"
TICK = "tick"
REPORT = "report"
ERROR = "error"
SHUTDOWN = "shutdown"
STATS = "stats"

# Server -> client replies.
HELLO_OK = "hello-ok"
REGISTERED = "registered"
BROADCAST = "broadcast"
OK = "ok"
ABORT = "abort"
STATS_OK = "stats-ok"

# A frame bigger than this is a corrupt length prefix, not a real batch: even a
# pathological campaign ships a few thousand 64-float embeddings per round.
MAX_FRAME_BYTES = 256 * 1024 * 1024

# Protocol v2 framing: magic, then the same 4-byte length prefix as v1, then
# the authentication tag, then the JSON body.  Version 3 keeps the framing
# and message schema of v2 but ships index-entry batches as packed base64
# float32 blobs (see wire.encode_entries_packed); the HELLO exchange
# negotiates down to plain-JSON entries when either end only speaks 2.
MAGIC = b"TQS2"
PROTOCOL_VERSION = 3
SUPPORTED_PROTOCOL_VERSIONS = (2, 3)
PACKED_ENTRIES_MIN_VERSION = 3
MAC_BYTES = hashlib.sha256().digest_size

_HEADER = struct.Struct(">I")

V1_REJECTION = (
    "this index server speaks protocol v2 (authenticated JSON frames); "
    "legacy pickle clients are rejected — reconnect with protocol='json' "
    "and the server's auth key"
)


class ProtocolMismatchError(ProtocolError):
    """The peer is not speaking protocol v2 at all (no magic on the frame).

    Raised instead of a generic :class:`~repro.errors.ProtocolError` so a v2
    server can answer a legacy pickle client in *its* dialect (a pickled ABORT
    frame) before closing — the one case where a clean rejection needs to know
    what the other side expected.
    """


@dataclass
class SyncBroadcast:
    """The coordinator's answer to one worker's sync: the other workers' news.

    ``entries`` is what the worker must fold into its local graph index;
    ``suppressed`` counts the entries the coordinator's novelty pruning held
    back because their canonical label was already known to this worker — the
    payload reduction the pruning buys, surfaced so it is measurable.
    ``next_budget`` is the budget policy's per-hour allocation for this worker
    from the next hour on (None when the campaign runs without budget
    rebalancing, i.e. keep the current budget).
    """

    entries: List[IndexEntry] = field(default_factory=list)
    suppressed: int = 0
    next_budget: Optional[int] = None


# ======================================================================== v1


def send_frame(sock: socket.socket, message: Any) -> None:
    """Serialize *message* and write one length-prefixed pickle (v1) frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES}); batch your entries"
        )
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


class _MidStreamEOFError(TransportError):
    """Connection closed with a partial read on the wire (internal marker).

    Lets the v2 reader classify truncation as *malformed input*
    (:class:`~repro.errors.ProtocolError`) without matching on error text;
    for v1 callers it is just the :class:`TransportError` it always was.
    """


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; None on a clean EOF before the first byte."""
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:
            raise TransportError(
                f"receive timed out after {sock.gettimeout()}s"
            ) from exc
        except OSError as exc:
            raise TransportError(f"receive failed: {exc}") from exc
        if not chunk:
            if not chunks:
                return None
            raise _MidStreamEOFError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, allow_eof: bool = False) -> Any:
    """Read one v1 frame; returns the message, or None on clean EOF if allowed.

    Unpickles the payload — only ever call this on frames from trusted peers
    (see the module docstring); protocol v2 never does.  Delegates to
    :class:`PickleFrameCodec`, the single sanctioned home of unpickling.
    """
    return _V1_CODEC.recv(sock, allow_eof)


def request(sock: socket.socket, message: Any) -> Any:
    """One v1 request/response round trip."""
    send_frame(sock, message)
    return recv_frame(sock)


# ======================================================================== v2


def _recv_component(
    sock: socket.socket, count: int, what: str, allow_eof: bool = False
) -> Optional[bytes]:
    """Read one v2 frame component; a partial read means a truncated frame.

    Socket-level failures (timeouts, resets) stay :class:`TransportError`;
    a peer that closes mid-frame produced *malformed input* and gets a
    :class:`~repro.errors.ProtocolError` so servers treat it as a bad client,
    not a dead transport.  With *allow_eof* a clean EOF before the first byte
    returns None (only sensible for the frame's leading component).
    """
    try:
        data = _recv_exact(sock, count)
    except _MidStreamEOFError as exc:
        raise ProtocolError(f"frame truncated while reading its {what}: {exc}") from exc
    if data is None and not allow_eof:
        raise ProtocolError(
            f"frame truncated: connection closed before its {what} "
            f"({count} bytes expected)"
        )
    return data


class FrameCodec:
    """One wire encoding of the sync protocol's tagged-tuple messages."""

    name = "abstract"

    def send(self, sock: socket.socket, message: Any) -> None:
        raise NotImplementedError

    def recv(self, sock: socket.socket, allow_eof: bool = False) -> Any:
        raise NotImplementedError

    def request(self, sock: socket.socket, message: Any) -> Any:
        """One request/response round trip."""
        self.send(sock, message)
        return self.recv(sock)


class PickleFrameCodec(FrameCodec):
    """The legacy v1 encoding: length-prefixed pickle, trusted hosts only.

    This class is the only place in the tree allowed to unpickle bytes
    (enforced by `python -m repro.lint`, SEC001): unpickling executes
    arbitrary code, so it stays confined to the HELLO-gated v1 path.
    """

    name = "pickle"

    def send(self, sock: socket.socket, message: Any) -> None:
        send_frame(sock, message)

    def recv(self, sock: socket.socket, allow_eof: bool = False) -> Any:
        header = _recv_exact(sock, _HEADER.size)
        if header is None:
            if allow_eof:
                return None
            raise TransportError("connection closed while waiting for a frame")
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame length {length} exceeds {MAX_FRAME_BYTES}; "
                "corrupt stream?"
            )
        payload = _recv_exact(sock, length)
        if payload is None:
            raise TransportError("connection closed between header and payload")
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise TransportError(f"cannot unpickle frame: {exc}") from exc


#: Singleton backing the module-level v1 helpers (`recv_frame`/`request`).
_V1_CODEC = PickleFrameCodec()


class JsonFrameCodec(FrameCodec):
    """Protocol v2: HMAC-SHA256-authenticated JSON frames, no pickle.

    *auth_key* is the shared secret both ends must hold; ``None`` (or empty)
    falls back to an unkeyed tag that still catches corruption and framing
    bugs but authenticates nothing — fine on localhost, not across hosts.

    A codec instance belongs to one connection: after the handshake both ends
    :meth:`bind` it to the server's connection nonce, which is mixed into
    every later tag so captured frames do not replay across connections.
    """

    name = "json"

    def __init__(self, auth_key: Optional[bytes] = None) -> None:
        self._key = bytes(auth_key or b"")
        self._binding = b""
        self._packed_entries = False

    def bind(self, nonce: str) -> None:
        """Mix the connection's HELLO_OK nonce into all subsequent tags."""
        self._binding = nonce.encode("ascii")

    def negotiate(self, version: int) -> None:
        """Adopt the connection's agreed protocol version (HELLO outcome).

        At version >= 3 both ends ship packed index entries; decoding is
        self-describing, so only the *encode* side consults this.
        """
        self._packed_entries = version >= PACKED_ENTRIES_MIN_VERSION

    @property
    def packed_entries(self) -> bool:
        return self._packed_entries

    def _tag(self, header: bytes, body: bytes) -> bytes:
        material = self._binding + header + body
        return hmac.new(self._key, material, hashlib.sha256).digest()

    def encode(self, message: Any) -> bytes:
        """The full frame for *message*, as bytes (used by the fault harness)."""
        from repro.distributed import wire

        body = json.dumps(
            wire.encode_message(message, packed_entries=self._packed_entries),
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise TransportError(
                f"refusing to send a {len(body)}-byte frame "
                f"(limit {MAX_FRAME_BYTES}); batch your entries"
            )
        header = MAGIC + _HEADER.pack(len(body))
        return header + self._tag(header, body) + body

    def send(self, sock: socket.socket, message: Any) -> None:
        try:
            sock.sendall(self.encode(message))
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    def recv(self, sock: socket.socket, allow_eof: bool = False) -> Any:
        magic = _recv_component(sock, len(MAGIC), "magic", allow_eof=True)
        if magic is None:
            if allow_eof:
                return None
            raise TransportError("connection closed while waiting for a frame")
        if magic != MAGIC:
            raise ProtocolMismatchError(
                f"not a protocol v2 frame (leading bytes {magic!r}); the peer "
                "may be speaking the legacy pickle protocol or garbage"
            )
        header = _recv_component(sock, _HEADER.size, "length prefix")
        (length,) = _HEADER.unpack(header)
        # Bound memory *before* any allocation: a corrupt or hostile length
        # prefix must never make the reader buffer gigabytes.
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame length {length} exceeds {MAX_FRAME_BYTES}; "
                "corrupt or hostile stream"
            )
        tag = _recv_component(sock, MAC_BYTES, "authentication tag")
        body = _recv_component(sock, length, "body")
        if not hmac.compare_digest(tag, self._tag(magic + header, body)):
            raise ProtocolError(
                "frame authentication failed (HMAC mismatch); check that both "
                "ends share the same auth key — and that the frame was not "
                "replayed from another connection"
            )
        try:
            obj = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
        from repro.distributed import wire

        return wire.decode_message(obj)


def codec_from_name(name: str, auth_key: Optional[bytes] = None) -> FrameCodec:
    """Construct the frame codec for a ``protocol=`` configuration value."""
    if name == "json":
        return JsonFrameCodec(auth_key)
    if name == "pickle":
        if auth_key:
            raise TransportError(
                "the legacy pickle protocol cannot authenticate frames; "
                "use protocol='json' with an auth key"
            )
        return PickleFrameCodec()
    raise TransportError(f"unknown wire protocol {name!r}; expected 'json' or 'pickle'")


def load_auth_key(path: str) -> bytes:
    """Read a shared auth key from *path* (surrounding whitespace stripped)."""
    try:
        with open(path, "rb") as handle:
            key = handle.read().strip()
    except OSError as exc:
        raise TransportError(f"cannot read auth key file {path!r}: {exc}") from exc
    if not key:
        raise TransportError(f"auth key file {path!r} is empty")
    return key


def client_handshake(sock: socket.socket, codec: FrameCodec) -> None:
    """Open a protocol v2 connection: HELLO out, HELLO_OK (or a reason) back.

    A no-op for the v1 pickle codec, which never negotiated.  On success the
    codec is bound to the server's connection nonce (replay protection).
    Raises :class:`TransportError` with a diagnosis when the server rejects
    the version, speaks a different protocol, or holds a different auth key.
    """
    if codec.name != "json":
        return
    codec.send(sock, (HELLO, PROTOCOL_VERSION))
    try:
        reply = codec.recv(sock)
    except ProtocolMismatchError as exc:
        raise TransportError(
            "index server did not answer the v2 handshake with a v2 frame; "
            f"it may be running the legacy pickle protocol ({exc})"
        ) from exc
    except ProtocolError as exc:
        raise TransportError(
            f"v2 handshake reply was rejected ({exc}); do both ends share "
            "the same auth key?"
        ) from exc
    except TransportError as exc:
        raise TransportError(
            f"index server closed the connection during the v2 handshake "
            f"({exc}); is it running protocol v2?"
        ) from exc
    if reply[0] == ABORT:
        raise TransportError(f"index server rejected the handshake: {reply[1]}")
    if reply[0] != HELLO_OK or reply[1] not in SUPPORTED_PROTOCOL_VERSIONS:
        raise TransportError(f"unexpected handshake reply {reply!r}")
    # The server replies with min(client version, server version): both ends
    # adopt it, so a v2 peer on either side keeps the fleet on JSON entries.
    if isinstance(codec, JsonFrameCodec):
        codec.negotiate(reply[1])
    codec.bind(reply[2])
