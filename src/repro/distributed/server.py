"""The distributed KQE index server: the paper's central index, over TCP.

:class:`IndexServer` hosts one
:class:`~repro.distributed.coordinator.CentralCoordinator` behind a
``socketserver.ThreadingTCPServer`` and speaks the bulk-synchronous protocol
of :mod:`repro.distributed.protocol`: clients REGISTER (either claiming a
pre-assigned shard id or asking the server to assign one of the campaign's
shards), SYNC a batch at every scheduled hour boundary and block until the
round's broadcast, REPORT their finished shard, and may request SHUTDOWN.

One handler thread serves each client connection; the sync barrier is a
condition variable: the thread that delivers the round's last batch computes
every worker's (novelty-pruned) broadcast under the lock, so results do not
depend on network timing — a campaign run against this server is
bit-identical to the in-process pool for the same seed.

Liveness mirrors the in-process coordinator: any protocol message (including
out-of-band TICK heartbeats from workers mid-hour) refreshes the activity
clock, and a barrier only declares the pool dead after ``round_timeout``
seconds of *total silence* — a slow hour never kills a healthy campaign.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.budget import BudgetPolicy
from repro.core.parallel import ShardSpec, WorkerReport
from repro.distributed import protocol
from repro.distributed.coordinator import CentralCoordinator
from repro.distributed.protocol import IndexEntry, SyncBroadcast
from repro.errors import TransportError


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Set after construction; typed here so handlers can reach the owner.
    index_server: "IndexServer"


class _Handler(socketserver.BaseRequestHandler):
    """One client connection: a loop of (frame in, frame out) exchanges."""

    def handle(self) -> None:
        owner = self.server.index_server  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        sock.settimeout(owner.round_timeout + 30.0)
        shard_ids: List[int] = []
        try:
            while True:
                message = protocol.recv_frame(sock, allow_eof=True)
                if message is None:
                    break
                reply, keep_going = owner.dispatch(message, shard_ids)
                if reply is not None:
                    protocol.send_frame(sock, reply)
                if not keep_going:
                    break
        except TransportError as exc:
            owner.connection_broken(shard_ids, str(exc))
        finally:
            owner.connection_closed(shard_ids)


class IndexServer:
    """Hosts the central graph index for N campaign workers over TCP."""

    def __init__(
        self,
        shards: Sequence[ShardSpec],
        sync_hours: Sequence[int],
        host: str = "127.0.0.1",
        port: int = 0,
        prune: bool = True,
        round_timeout: float = 300.0,
        budget_policy: Optional[BudgetPolicy] = None,
    ) -> None:
        if not shards:
            raise TransportError("an index server needs at least one shard")
        self.sync_hours: Tuple[int, ...] = tuple(sync_hours)
        self.round_timeout = round_timeout
        self.coordinator = CentralCoordinator(
            prune=prune,
            budget_policy=budget_policy,
            initial_budgets={
                spec.shard_id: spec.config.queries_per_hour for spec in shards
            },
        )
        self.reports: Dict[int, WorkerReport] = {}
        self.expected = len(shards)
        self._shards = {spec.shard_id: spec for spec in shards}
        self._assignable: List[ShardSpec] = sorted(
            shards, key=lambda spec: spec.shard_id
        )
        self._registered: set = set()
        self._round_batches: Dict[int, Dict[int, List[IndexEntry]]] = {}
        self._round_broadcasts: Dict[int, Dict[int, SyncBroadcast]] = {}
        self._round_deliveries: Dict[int, int] = {}
        self._completed_hours: set = set()
        self._cond = threading.Condition()
        self._done = threading.Event()
        self._failure: Optional[str] = None
        self._last_activity = time.monotonic()
        self._server = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._server.index_server = self
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "IndexServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name=f"kqe-index-server-{self.port}",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and close the listening socket (idempotent)."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every shard reported (or the campaign failed)."""
        return self._done.wait(timeout)

    @property
    def failure(self) -> Optional[str]:
        """Why the campaign died, or None while it is healthy."""
        with self._cond:
            return self._failure

    @property
    def completed(self) -> bool:
        """True when every expected shard delivered its report."""
        with self._cond:
            return len(self.reports) == self.expected

    def seconds_since_activity(self) -> float:
        """Seconds since the last protocol message from any client."""
        with self._cond:
            return time.monotonic() - self._last_activity

    # -------------------------------------------------------------- failures

    def fail(self, reason: str) -> None:
        """Mark the campaign dead; wakes every barrier and waiter."""
        with self._cond:
            self._fail_locked(reason)

    def _fail_locked(self, reason: str) -> None:
        # Completion wins races: once every shard has reported, a late
        # failure signal (e.g. the serve CLI's overall timeout firing just as
        # the last REPORT lands) must not discard a finished campaign.
        if self._failure is None and len(self.reports) < self.expected:
            self._failure = reason
        self._done.set()
        self._cond.notify_all()

    def connection_broken(self, shard_ids: List[int], detail: str) -> None:
        """A client connection died mid-protocol."""
        with self._cond:
            missing = [sid for sid in shard_ids if sid not in self.reports]
            if missing and not self._done.is_set():
                self._fail_locked(
                    f"connection for shard(s) {missing} broke "
                    f"before reporting: {detail}"
                )

    def connection_closed(self, shard_ids: List[int]) -> None:
        """A client connection reached EOF; fine unless its report is missing."""
        with self._cond:
            missing = [sid for sid in shard_ids if sid not in self.reports]
            if missing and self._failure is None and not self._done.is_set():
                self._fail_locked(
                    f"client for shard(s) {missing} disconnected before reporting"
                )

    # ------------------------------------------------------------ dispatch

    def dispatch(self, message, shard_ids: List[int]):
        """Handle one protocol message; returns (reply, keep_connection)."""
        if not isinstance(message, tuple) or not message:
            return (protocol.ABORT, "malformed message"), False
        verb = message[0]
        if verb == protocol.REGISTER:
            return self._register(message[1], shard_ids), True
        if verb == protocol.TICK:
            self._touch()
            return (protocol.OK,), True
        if verb == protocol.SYNC:
            _, shard_id, hour, entries = message
            return self._sync(shard_id, hour, entries), True
        if verb == protocol.REPORT:
            return self._report(message[1]), True
        if verb == protocol.ERROR:
            _, shard_id, text = message
            # Only a *registered* worker's failure dooms the campaign.  A
            # superfluous client whose registration was rejected (operator
            # over-provisioned, or a crashed client restarted) also reports an
            # error on its way out; a healthy run must shrug that off.
            with self._cond:
                if shard_id in self._registered:
                    self._fail_locked(f"worker {shard_id} failed:\n{text}")
            return (protocol.OK,), True
        if verb == protocol.SHUTDOWN:
            self._shutdown_requested()
            return (protocol.OK,), False
        return (protocol.ABORT, f"unknown verb {verb!r}"), False

    def _touch(self) -> None:
        with self._cond:
            self._last_activity = time.monotonic()

    def _register(self, shard_id: Optional[int], shard_ids: List[int]):
        with self._cond:
            self._last_activity = time.monotonic()
            if self._failure is not None:
                return (protocol.ABORT, self._failure)
            if shard_id is None:
                # Server-side assignment: hand out the next unassigned shard.
                unassigned = [
                    spec
                    for spec in self._assignable
                    if spec.shard_id not in self._registered
                ]
                if not unassigned:
                    return (
                        protocol.ABORT,
                        f"all {self.expected} shards already have clients",
                    )
                spec: Optional[ShardSpec] = unassigned[0]
                shard_id = unassigned[0].shard_id
            else:
                if shard_id not in self._shards:
                    return (protocol.ABORT, f"unknown shard id {shard_id}")
                if shard_id in self._registered:
                    return (protocol.ABORT, f"shard {shard_id} already registered")
                spec = None  # the client brought its own spec
            self._registered.add(shard_id)
            shard_ids.append(shard_id)
            return (protocol.REGISTERED, spec, self.sync_hours)

    def _sync(self, shard_id: int, hour: int, entries: List[IndexEntry]):
        with self._cond:
            self._last_activity = time.monotonic()
            if self._failure is not None:
                return (protocol.ABORT, self._failure)
            if shard_id not in self._registered:
                # A stray batch must not count toward (or corrupt) the
                # barrier; diagnose it instead of letting a later broadcast
                # lookup blow up on a legit worker's handler thread.
                self._fail_locked(
                    f"protocol violation: sync from unregistered shard {shard_id}"
                )
                return (protocol.ABORT, self._failure)
            if hour not in self.sync_hours or hour in self._completed_hours:
                self._fail_locked(
                    f"protocol violation: sync at unscheduled or already "
                    f"completed hour {hour}"
                )
                return (protocol.ABORT, self._failure)
            batches = self._round_batches.setdefault(hour, {})
            if shard_id in batches:
                self._fail_locked(
                    f"protocol violation: duplicate sync from shard "
                    f"{shard_id} at hour {hour}"
                )
                return (protocol.ABORT, self._failure)
            batches[shard_id] = entries
            if len(batches) == self.expected:
                # Last arrival completes the round for everyone, under the
                # lock, in sorted shard order — timing cannot leak into the
                # merged index or the broadcasts.
                self._round_broadcasts[hour] = self.coordinator.complete_round(batches)
                self._cond.notify_all()
            while hour not in self._round_broadcasts and self._failure is None:
                self._cond.wait(timeout=1.0)
                if (
                    hour not in self._round_broadcasts
                    and self._failure is None
                    and time.monotonic() - self._last_activity > self.round_timeout
                ):
                    self._fail_locked(
                        f"sync barrier at hour {hour} heard nothing for "
                        f"{self.round_timeout:.0f}s "
                        f"({len(batches)}/{self.expected} batches in); "
                        "assuming a dead worker"
                    )
            if self._failure is not None:
                return (protocol.ABORT, self._failure)
            broadcast = self._round_broadcasts[hour][shard_id]
            # Free the round's payloads once every worker has fetched its
            # broadcast — a long campaign must not accumulate every round's
            # raw embedding batches in server memory.
            self._round_deliveries[hour] = self._round_deliveries.get(hour, 0) + 1
            if self._round_deliveries[hour] == self.expected:
                self._completed_hours.add(hour)
                del self._round_batches[hour]
                del self._round_broadcasts[hour]
                del self._round_deliveries[hour]
            return (protocol.BROADCAST, broadcast)

    def _report(self, report: WorkerReport):
        with self._cond:
            self._last_activity = time.monotonic()
            if self._failure is not None:
                return (protocol.ABORT, self._failure)
            if report.shard_id not in self._registered:
                self._fail_locked(
                    f"protocol violation: report from unregistered shard "
                    f"{report.shard_id}"
                )
                return (protocol.ABORT, self._failure)
            if report.shard_id in self.reports:
                self._fail_locked(
                    f"protocol violation: duplicate report for shard "
                    f"{report.shard_id}"
                )
                return (protocol.ABORT, self._failure)
            self.coordinator.absorb(report.unsynced_entries)
            self.reports[report.shard_id] = report
            if len(self.reports) == self.expected:
                self._done.set()
                self._cond.notify_all()
            return (protocol.OK,)

    def _shutdown_requested(self) -> None:
        with self._cond:
            self._last_activity = time.monotonic()
            if len(self.reports) < self.expected:
                self._fail_locked("shutdown requested before campaign completed")
        # Stop serving from a helper thread: stop() joins the serve-forever
        # thread, which is fine from a handler thread but must not run under
        # the condition lock.
        threading.Thread(target=self.stop, daemon=True).start()
