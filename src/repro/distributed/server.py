"""The distributed KQE index server: the paper's central index, over TCP.

:class:`IndexServer` hosts one
:class:`~repro.distributed.coordinator.CentralCoordinator` behind a
``socketserver.ThreadingTCPServer`` and speaks the bulk-synchronous protocol
of :mod:`repro.distributed.protocol`: clients REGISTER (either claiming a
pre-assigned shard id or asking the server to assign one of the campaign's
shards), SYNC a batch at every scheduled hour boundary and block until the
round's broadcast, REPORT their finished shard, and may request SHUTDOWN.

The wire encoding is pluggable (``protocol="json" | "pickle"``): the default
is protocol v2 — HMAC-authenticated JSON frames opened by a HELLO version
negotiation — under which nothing received from a socket is ever unpickled;
legacy pickle clients are turned away with a clean, v1-readable rejection.
Malformed or unauthenticated frames reject *that connection* and leave the
server serving.

One handler thread serves each client connection; the sync barrier is a
condition variable: the thread that delivers the round's last batch computes
every worker's (novelty-pruned) broadcast under the lock, so results do not
depend on network timing — a campaign run against this server is
bit-identical to the in-process pool for the same seed.

Liveness is tracked per shard: every protocol message (including out-of-band
TICK heartbeats) refreshes its sender's activity clock, and once a sync round
opens, the shards that fail to deliver their batch within ``round_timeout``
seconds are declared stalled — heartbeats prove a process is alive, not that
it is making progress, so a wedged client can no longer park a barrier
forever.  What happens to a stalled or dead client is policy:
``evict_dead_clients=False`` (the default) fails the campaign fast, naming
the shards; ``evict_dead_clients=True`` evicts them instead — the barrier
releases, the survivors complete the round, and the evicted shard's per-hour
budget is redistributed (total conserved) via the coordinator.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import socketserver
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.budget import BudgetPolicy
from repro.core.parallel import ShardSpec, WorkerReport
from repro.distributed import protocol, wire
from repro.distributed.coordinator import CentralCoordinator
from repro.distributed.protocol import (
    FrameCodec,
    IndexEntry,
    ProtocolMismatchError,
    SyncBroadcast,
    codec_from_name,
)
from repro.errors import ProtocolError, SnapshotError, TransportError
from repro.kqe.snapshot import SnapshotWriter, read_snapshot

#: File inside ``--snapshot-dir`` holding the round log for one campaign.
SNAPSHOT_FILENAME = "rounds.tqssnap"

#: Lock discipline, enforced by `python -m repro.lint` (CONC001): every
#: mutable campaign-state attribute below may only be touched inside
#: ``with self._cond:`` or in a ``*_locked`` method whose callers hold it.
GUARDED_BY = {
    "IndexServer": (
        "_cond",
        (
            "reports",
            "expected",
            "frames_rejected",
            "coordinator",
            "_shards",
            "_assignable",
            "_registered",
            "_evicted",
            "_shard_activity",
            "_round_batches",
            "_round_broadcasts",
            "_round_pending_fetch",
            "_round_opened",
            "_completed_hours",
            "_rounds_completed",
            "_replayed_broadcasts",
            "_replayed_counts",
            "_replay_pending",
            "_snapshot_writer",
            "_telemetry",
            "_failure",
            "_last_activity",
            "_stopped",
        ),
    ),
}


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Set after construction; typed here so handlers can reach the owner.
    index_server: "IndexServer"


class _Handler(socketserver.BaseRequestHandler):
    """One client connection: a loop of (frame in, frame out) exchanges."""

    def handle(self) -> None:
        owner = self.server.index_server  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        sock.settimeout(owner.round_timeout + 30.0)
        shard_ids: List[int] = []
        codec = owner.connection_codec()
        try:
            if not self._handshake(owner, sock, codec):
                return
            while True:
                try:
                    message = codec.recv(sock, allow_eof=True)
                except ProtocolError as exc:
                    # Malformed, truncated or unauthenticated input: reject
                    # this connection, keep serving everyone else.
                    owner.frame_rejected(shard_ids, str(exc))
                    self._abort(sock, codec, str(exc))
                    return
                if message is None:
                    break
                reply, keep_going = owner.dispatch(message, shard_ids)
                if reply is not None:
                    codec.send(sock, reply)
                if not keep_going:
                    break
        except TransportError as exc:
            owner.connection_broken(shard_ids, str(exc))
        finally:
            owner.connection_closed(shard_ids)

    def _handshake(self, owner: "IndexServer", sock, codec: FrameCodec) -> bool:
        """Protocol v2 version negotiation; True when the connection may talk."""
        if codec.name != "json":
            return True
        try:
            message = codec.recv(sock, allow_eof=True)
        except ProtocolMismatchError as exc:
            # A legacy pickle client (or garbage).  Answer in the v1 dialect —
            # *sending* pickle is harmless, only loading it is not — so old
            # clients see the reason instead of a confusing EOF.
            owner.frame_rejected([], str(exc))
            try:
                protocol.send_frame(sock, (protocol.ABORT, protocol.V1_REJECTION))
            except TransportError:
                pass
            return False
        except ProtocolError as exc:
            owner.frame_rejected([], str(exc))
            self._abort(sock, codec, f"handshake failed: {exc}")
            return False
        if message is None:
            return False
        if message[0] != protocol.HELLO:
            owner.frame_rejected([], f"no HELLO before {message[0]!r}")
            self._abort(
                sock,
                codec,
                f"protocol v2 requires a HELLO handshake before {message[0]!r}",
            )
            return False
        if message[1] not in protocol.SUPPORTED_PROTOCOL_VERSIONS:
            owner.frame_rejected([], f"unsupported version {message[1]!r}")
            self._abort(
                sock,
                codec,
                f"unsupported protocol version {message[1]!r}; this server "
                f"speaks versions {protocol.SUPPORTED_PROTOCOL_VERSIONS}",
            )
            return False
        # Negotiate down to the older peer: a v2 client keeps plain-JSON
        # index entries, a v3 client gets packed float32 batches.
        negotiated = min(message[1], protocol.PROTOCOL_VERSION)
        if isinstance(codec, protocol.JsonFrameCodec):
            codec.negotiate(negotiated)
        # Bind the rest of the connection to a fresh nonce: frames captured
        # elsewhere fail authentication here, so replay cannot fail a round.
        nonce = os.urandom(16).hex()
        codec.send(sock, (protocol.HELLO_OK, negotiated, nonce))
        codec.bind(nonce)
        return True

    def _abort(self, sock, codec: FrameCodec, reason: str) -> None:
        """Best-effort ABORT so the peer learns why it is being dropped."""
        try:
            codec.send(sock, (protocol.ABORT, reason))
        except TransportError:
            pass


class IndexServer:
    """Hosts the central graph index for N campaign workers over TCP."""

    def __init__(
        self,
        shards: Sequence[ShardSpec],
        sync_hours: Sequence[int],
        host: str = "127.0.0.1",
        port: int = 0,
        prune: bool = True,
        round_timeout: float = 300.0,
        budget_policy: Optional[BudgetPolicy] = None,
        protocol: str = "json",
        auth_key: Optional[bytes] = None,
        evict_dead_clients: bool = False,
        snapshot_dir: Optional[str] = None,
    ) -> None:
        if not shards:
            raise TransportError("an index server needs at least one shard")
        self.sync_hours: Tuple[int, ...] = tuple(sync_hours)
        self.round_timeout = round_timeout
        self.protocol = protocol
        self._auth_key = auth_key
        # Validate the protocol/key combination before binding the socket.
        codec_from_name(protocol, auth_key)
        self.evict_dead_clients = evict_dead_clients
        self.coordinator = CentralCoordinator(
            prune=prune,
            budget_policy=budget_policy,
            initial_budgets={
                spec.shard_id: spec.config.queries_per_hour for spec in shards
            },
        )
        self.reports: Dict[int, WorkerReport] = {}
        self.expected = len(shards)
        self.frames_rejected = 0
        self._shards = {spec.shard_id: spec for spec in shards}
        self._assignable: List[ShardSpec] = sorted(
            shards, key=lambda spec: spec.shard_id
        )
        self._registered: set = set()
        self._evicted: Dict[int, str] = {}
        now = time.monotonic()
        self._shard_activity: Dict[int, float] = {spec.shard_id: now for spec in shards}
        self._round_batches: Dict[int, Dict[int, List[IndexEntry]]] = {}
        self._round_broadcasts: Dict[int, Dict[int, SyncBroadcast]] = {}
        self._round_pending_fetch: Dict[int, set] = {}
        self._round_opened: Dict[int, float] = {}
        self._completed_hours: set = set()
        self._rounds_completed = 0
        # Latest cumulative telemetry snapshot per shard (dict form), fed by
        # the SYNC piggyback mid-campaign and replaced by the REPORT's final
        # snapshot; merged on demand for STATS / Prometheus exposition.
        self._telemetry: Dict[int, Dict[str, Any]] = {}
        # Rounds replayed from a snapshot at startup: restarted clients
        # deterministically re-run the campaign from hour 0, and these serve
        # their already-merged broadcasts without re-merging anything.
        self._replayed_broadcasts: Dict[int, Dict[int, SyncBroadcast]] = {}
        self._replayed_counts: Dict[int, Dict[int, int]] = {}
        self._replay_pending: Dict[int, set] = {}
        self._snapshot_writer: Optional[SnapshotWriter] = None
        self.snapshot_dir = snapshot_dir
        self.restored_rounds = 0
        self._cond = threading.Condition()
        self._done = threading.Event()
        self._failure: Optional[str] = None
        self._last_activity = now
        if snapshot_dir is not None:
            with self._cond:
                self._open_snapshot_locked(snapshot_dir)
        self._server = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._server.index_server = self
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    # ------------------------------------------------------------- lifecycle

    def connection_codec(self) -> FrameCodec:
        """A fresh codec for one connection (each gets its own nonce binding)."""
        return codec_from_name(self.protocol, self._auth_key)

    def start(self) -> "IndexServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name=f"kqe-index-server-{self.port}",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and close the listening socket (idempotent)."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
        self._server.shutdown()
        self._server.server_close()
        with self._cond:
            writer, self._snapshot_writer = self._snapshot_writer, None
        if writer is not None:
            writer.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every live shard reported (or the campaign failed)."""
        return self._done.wait(timeout)

    @property
    def failure(self) -> Optional[str]:
        """Why the campaign died, or None while it is healthy."""
        with self._cond:
            return self._failure

    @property
    def completed(self) -> bool:
        """True when every live (non-evicted) shard delivered its report."""
        with self._cond:
            return self._completed_locked()

    def _completed_locked(self) -> bool:
        # A campaign with no reports is never complete: evicting or losing
        # the last client leaves nothing to salvage.
        return bool(self.reports) and len(self.reports) >= self._live_expected_locked()

    @property
    def evicted(self) -> Dict[int, str]:
        """Shards evicted for liveness failures, with the reason for each."""
        with self._cond:
            return dict(self._evicted)

    def seconds_since_activity(self) -> float:
        """Seconds since the last protocol message from any client."""
        with self._cond:
            return time.monotonic() - self._last_activity

    def _live_expected_locked(self) -> int:
        return self.expected - len(self._evicted)

    # ------------------------------------------------------------- snapshots

    def _campaign_fingerprint_locked(self) -> str:
        """One hash pinning the campaign a snapshot belongs to.

        Derived from the shard specs, the sync schedule and the pruning
        switch: a snapshot only replays into the *same* deterministic
        campaign, anything else starts a fresh log.
        """
        material = json.dumps(
            {
                "shards": [wire.encode_shard_spec(spec) for spec in self._assignable],
                "sync_hours": list(self.sync_hours),
                "prune": self.coordinator.prune,
            },
            separators=(",", ":"),
            sort_keys=True,
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _snapshot_header_locked(self) -> Dict[str, Any]:
        return {
            "kind": "kqe-server-rounds",
            "version": 1,
            "fingerprint": self._campaign_fingerprint_locked(),
        }

    def _open_snapshot_locked(self, snapshot_dir: str) -> None:
        """Restore any prior rounds for this campaign, then keep logging.

        The log is rewritten through a rename: valid records are replayed
        into the coordinator and re-appended to a fresh temp file that
        atomically replaces the old one — which silently sheds a torn final
        record (the crash case; that round simply re-runs live) and leaves
        the file structurally valid at every instant.
        """
        os.makedirs(snapshot_dir, exist_ok=True)
        path = os.path.join(snapshot_dir, SNAPSHOT_FILENAME)
        header = self._snapshot_header_locked()
        batches: List[Any] = []
        if os.path.exists(path):
            try:
                stored_header, batches, _ = read_snapshot(path)
            except SnapshotError as exc:
                raise TransportError(
                    f"cannot restore snapshot {path!r}: {exc}"
                ) from exc
            if stored_header != header:
                # A different campaign (or snapshot format) used this
                # directory; its rounds cannot replay into this one.
                batches = []
        with obs.span("server.snapshot.restore"):
            temp_path = path + ".tmp"
            writer = SnapshotWriter.create(temp_path, header)
            try:
                for batch in batches:
                    self._replay_batch_locked(batch)
                    writer.append(batch.vectors, batch.labels, batch.meta)
            except (OSError, SnapshotError, TransportError):
                writer.close()
                raise
            os.replace(temp_path, path)
            writer.path = path
        self._snapshot_writer = writer

    def _replay_batch_locked(self, batch: Any) -> None:
        """Re-merge one logged round; its broadcasts await the restarted shards."""
        hour = batch.meta.get("hour")
        shards = batch.meta.get("shards")
        if not isinstance(hour, int) or not isinstance(shards, list):
            raise TransportError(f"snapshot record meta is malformed: {batch.meta!r}")
        if hour not in self.sync_hours or hour in self._replayed_broadcasts:
            raise TransportError(
                f"snapshot replays hour {hour} outside the campaign's schedule"
            )
        round_batches: Dict[int, List[IndexEntry]] = {}
        counts: Dict[int, int] = {}
        offset = 0
        for pair in shards:
            shard_id, count = int(pair[0]), int(pair[1])
            if shard_id not in self._shards or count < 0:
                raise TransportError(
                    f"snapshot names unknown shard {shard_id} at hour {hour}"
                )
            round_batches[shard_id] = [
                (batch.vectors[offset + position], batch.labels[offset + position])
                for position in range(count)
            ]
            counts[shard_id] = count
            offset += count
        if offset != len(batch.vectors):
            raise TransportError(
                f"snapshot record at hour {hour} claims {offset} entries "
                f"but holds {len(batch.vectors)}"
            )
        self._replayed_broadcasts[hour] = self.coordinator.replay_round(round_batches)
        self._replayed_counts[hour] = counts
        self._replay_pending[hour] = set(round_batches)
        self._rounds_completed += 1
        self.restored_rounds += 1

    def _append_snapshot_locked(
        self, hour: int, batches: Dict[int, List[IndexEntry]]
    ) -> None:
        writer = self._snapshot_writer
        if writer is None:
            return
        shards: List[List[int]] = []
        vectors: List[List[float]] = []
        labels: List[str] = []
        for shard_id in sorted(batches):
            entries = batches[shard_id]
            shards.append([shard_id, len(entries)])
            for vector, label in entries:
                vectors.append([float(component) for component in vector])
                labels.append(label)
        try:
            with obs.span("server.snapshot.append"):
                writer.append(vectors, labels, {"hour": hour, "shards": shards})
        except (OSError, SnapshotError) as exc:
            # A campaign whose durability was requested but lost must fail
            # loudly, not complete with a silently unrecoverable log.
            self._fail_locked(f"snapshot append failed at hour {hour}: {exc}")

    def _replayed_sync_locked(
        self, shard_id: int, hour: int, entries: List[IndexEntry]
    ) -> Tuple[Any, ...]:
        """Serve one stored broadcast to a deterministically re-running shard."""
        broadcasts = self._replayed_broadcasts[hour]
        if shard_id not in broadcasts:
            self._fail_locked(
                f"restore mismatch: shard {shard_id} synced at replayed hour "
                f"{hour} but was not part of the logged round"
            )
            return (protocol.ABORT, self._failure)
        logged = self._replayed_counts[hour].get(shard_id, 0)
        if len(entries) != logged:
            self._fail_locked(
                f"restore divergence: shard {shard_id} shipped {len(entries)} "
                f"entries at hour {hour} where the snapshot logged {logged}; "
                "the restarted campaign is not replaying deterministically"
            )
            return (protocol.ABORT, self._failure)
        broadcast = broadcasts[shard_id]
        pending = self._replay_pending[hour]
        pending.discard(shard_id)
        if not pending:
            self._cleanup_replayed_round_locked(hour)
        return (protocol.BROADCAST, broadcast)

    def _cleanup_replayed_round_locked(self, hour: int) -> None:
        self._completed_hours.add(hour)
        del self._replayed_broadcasts[hour]
        del self._replayed_counts[hour]
        del self._replay_pending[hour]

    # ----------------------------------------------------------------- stats

    def stats_payload(self) -> Dict[str, Any]:
        """One JSON-safe snapshot of server health plus merged worker telemetry.

        Served to the authenticated STATS verb and the Prometheus endpoint so
        barrier-stall debugging (who went silent, how many frames were
        rejected, which shards were evicted) no longer needs log scraping.
        """
        with self._cond:
            now = time.monotonic()
            merged = self._merged_telemetry_locked()
            return {
                "protocol": self.protocol,
                "expected_shards": self.expected,
                "registered_shards": sorted(self._registered),
                "reports_received": len(self.reports),
                "rounds_completed": self._rounds_completed,
                "rounds_restored": self.restored_rounds,
                "sync_rounds_scheduled": len(self.sync_hours),
                "frames_rejected": self.frames_rejected,
                "eviction_count": len(self._evicted),
                "evictions": {
                    str(sid): reason for sid, reason in sorted(self._evicted.items())
                },
                "shard_last_heard_seconds": {
                    str(sid): round(now - heard, 3)
                    for sid, heard in sorted(self._shard_activity.items())
                },
                "completed": self._completed_locked(),
                "failure": self._failure,
                "telemetry": merged.to_dict() if merged is not None else None,
            }

    def _merged_telemetry_locked(self) -> Optional[obs.MetricsSnapshot]:
        if not self._telemetry:
            return None
        return obs.MetricsSnapshot.merge_all(
            obs.MetricsSnapshot.from_dict(snapshot)
            for _, snapshot in sorted(self._telemetry.items())
        )

    def render_prometheus(self) -> str:
        """The Prometheus text exposition for ``--metrics-addr`` scrapes."""
        stats = self.stats_payload()
        snapshot = (
            obs.MetricsSnapshot.from_dict(stats["telemetry"])
            if stats["telemetry"] is not None
            else None
        )
        return obs.render_prometheus(
            snapshot,
            extra_gauges={
                "server.frames_rejected": stats["frames_rejected"],
                "server.reports_received": stats["reports_received"],
                "server.registered_shards": len(stats["registered_shards"]),
                "server.expected_shards": stats["expected_shards"],
                "server.rounds_completed": stats["rounds_completed"],
                "server.evictions": stats["eviction_count"],
                "server.completed": int(stats["completed"]),
            },
        )

    def _live_shard_ids_locked(self) -> List[int]:
        return [sid for sid in self._shards if sid not in self._evicted]

    # -------------------------------------------------------------- failures

    def fail(self, reason: str) -> None:
        """Mark the campaign dead; wakes every barrier and waiter."""
        with self._cond:
            self._fail_locked(reason)

    def _fail_locked(self, reason: str) -> None:
        # Completion wins races: once every live shard has reported, a late
        # failure signal (e.g. the serve CLI's overall timeout firing just as
        # the last REPORT lands) must not discard a finished campaign.
        if self._failure is None and not self._completed_locked():
            self._failure = reason
        self._done.set()
        self._cond.notify_all()

    def frame_rejected(self, shard_ids: List[int], detail: str) -> None:
        """A connection sent a malformed/unauthenticated frame and was cut."""
        with self._cond:
            self.frames_rejected += 1
            self._connection_lost_locked(shard_ids, f"sent a malformed frame: {detail}")

    def connection_broken(self, shard_ids: List[int], detail: str) -> None:
        """A client connection died mid-protocol."""
        with self._cond:
            self._connection_lost_locked(
                shard_ids, f"connection broke before reporting: {detail}"
            )

    def connection_closed(self, shard_ids: List[int]) -> None:
        """A client connection reached EOF; fine unless its report is missing."""
        with self._cond:
            self._connection_lost_locked(
                shard_ids, "client disconnected before reporting"
            )

    def _connection_lost_locked(self, shard_ids: List[int], why: str) -> None:
        missing = [
            sid
            for sid in shard_ids
            if sid not in self.reports and sid not in self._evicted
        ]
        if not missing or self._done.is_set() or self._failure is not None:
            return
        if self.evict_dead_clients:
            for sid in missing:
                self._evict_locked(sid, why)
        else:
            self._fail_locked(f"shard(s) {missing}: {why}")

    # -------------------------------------------------------------- eviction

    def _evict_locked(self, shard_id: int, reason: str) -> None:
        """Remove a dead/stalled shard from the campaign and move on.

        Open rounds stop waiting for (and drop any batch from) the shard, its
        per-hour budget is redistributed to the survivors (conserving the
        campaign total), and completion is re-checked — the eviction of the
        last missing shard is what releases a stuck barrier.
        """
        if shard_id in self._evicted:
            return
        self._evicted[shard_id] = reason
        self._registered.discard(shard_id)
        self.coordinator.evict(shard_id)
        for hour, batches in list(self._round_batches.items()):
            if hour not in self._round_broadcasts:
                batches.pop(shard_id, None)
        for hour in list(self._round_broadcasts):
            pending = self._round_pending_fetch[hour]
            pending.discard(shard_id)
            if not pending:
                self._cleanup_round_locked(hour)
        for hour in list(self._replay_pending):
            pending = self._replay_pending[hour]
            pending.discard(shard_id)
            if not pending:
                self._cleanup_replayed_round_locked(hour)
        if self._live_expected_locked() == 0:
            self._fail_locked("every client was evicted before the campaign completed")
            return
        for hour in list(self._round_batches):
            self._maybe_complete_round_locked(hour)
        if self._completed_locked():
            self._done.set()
        self._cond.notify_all()

    def _enforce_round_deadline_locked(self, hour: int) -> None:
        """Once a round opens, the laggards have ``round_timeout`` to join.

        Heartbeats keep a *pre-round* client alive indefinitely, but they no
        longer count as barrier progress: a client that registers (and ticks)
        without ever syncing used to park the round forever.  Now it is
        evicted — or, without ``evict_dead_clients``, the campaign fails fast
        naming the stalled shards.
        """
        if hour in self._round_broadcasts or self._failure is not None:
            return
        opened = self._round_opened.get(hour)
        if opened is None:
            return
        now = time.monotonic()
        waited = now - opened
        if waited <= self.round_timeout:
            return
        batches = self._round_batches.get(hour, {})
        stalled = sorted(
            sid for sid in self._live_shard_ids_locked() if sid not in batches
        )
        if not stalled:
            return

        # The per-shard activity clock cannot excuse a laggard (its heartbeat
        # thread ticks whether the worker is computing or wedged), but it
        # tells the operator which failure they are looking at: a dead client
        # went silent, a wedged one was heard from moments ago.
        def last_heard(sid: int) -> str:
            return f"last heard from {now - self._shard_activity[sid]:.0f}s ago"

        if self.evict_dead_clients and len(stalled) < self._live_expected_locked():
            for sid in stalled:
                self._evict_locked(
                    sid,
                    f"no sync at hour {hour} within {self.round_timeout:.0f}s "
                    f"of the round opening ({last_heard(sid)})",
                )
        else:
            silence = ", ".join(f"shard {sid}: {last_heard(sid)}" for sid in stalled)
            self._fail_locked(
                f"sync barrier at hour {hour} waited {waited:.0f}s for "
                f"shard(s) {stalled} ({len(batches)}/{self._live_expected_locked()} "
                f"batches in; {silence}); assuming dead or stalled worker(s)"
            )

    # ------------------------------------------------------------ dispatch

    def dispatch(self, message, shard_ids: List[int]):
        """Handle one protocol message; returns (reply, keep_connection)."""
        if not isinstance(message, tuple) or not message:
            return (protocol.ABORT, "malformed message"), False
        verb = message[0]
        if verb == protocol.REGISTER:
            return self._register(message[1], shard_ids), True
        if verb == protocol.TICK:
            self._touch(message[1] if len(message) > 1 else None)
            return (protocol.OK,), True
        if verb == protocol.SYNC:
            # 4-tuple from pre-telemetry peers, 5-tuple with the piggybacked
            # metrics snapshot; the barrier semantics are identical.
            shard_id, hour, entries = message[1], message[2], message[3]
            telemetry = message[4] if len(message) > 4 else None
            return self._sync(shard_id, hour, entries, telemetry), True
        if verb == protocol.STATS:
            # Read-only and allowed from any authenticated connection (the
            # operator's stats CLI never registers as a shard).
            self._touch()
            return (protocol.STATS_OK, self.stats_payload()), True
        if verb == protocol.REPORT:
            return self._report(message[1]), True
        if verb == protocol.ERROR:
            _, shard_id, text = message
            # Only a *registered* worker's failure dooms the campaign.  A
            # superfluous client whose registration was rejected (operator
            # over-provisioned, or a crashed client restarted) also reports an
            # error on its way out, and so does an evicted client discovering
            # its eviction; a healthy run must shrug those off.
            with self._cond:
                self._touch_locked(shard_id)
                if shard_id in self._registered:
                    self._fail_locked(f"worker {shard_id} failed:\n{text}")
            return (protocol.OK,), True
        if verb == protocol.SHUTDOWN:
            self._shutdown_requested()
            return (protocol.OK,), False
        return (protocol.ABORT, f"unknown verb {verb!r}"), False

    def _touch(self, shard_id: Optional[int] = None) -> None:
        with self._cond:
            self._touch_locked(shard_id)

    def _touch_locked(self, shard_id: Optional[int] = None) -> None:
        now = time.monotonic()
        self._last_activity = now
        if shard_id is not None and shard_id in self._shard_activity:
            self._shard_activity[shard_id] = now

    def _register(self, shard_id: Optional[int], shard_ids: List[int]):
        with self._cond:
            if self._failure is not None:
                return (protocol.ABORT, self._failure)
            if shard_id is not None and shard_id in self._evicted:
                return (
                    protocol.ABORT,
                    f"shard {shard_id} was evicted: {self._evicted[shard_id]}",
                )
            if shard_id is None:
                # Server-side assignment: hand out the next unassigned shard.
                unassigned = [
                    spec
                    for spec in self._assignable
                    if spec.shard_id not in self._registered
                    and spec.shard_id not in self._evicted
                ]
                if not unassigned:
                    return (
                        protocol.ABORT,
                        f"all {self.expected} shards already have clients",
                    )
                spec: Optional[ShardSpec] = unassigned[0]
                shard_id = unassigned[0].shard_id
            else:
                if shard_id not in self._shards:
                    return (protocol.ABORT, f"unknown shard id {shard_id}")
                if shard_id in self._registered:
                    return (protocol.ABORT, f"shard {shard_id} already registered")
                spec = None  # the client brought its own spec
            self._registered.add(shard_id)
            shard_ids.append(shard_id)
            self._touch_locked(shard_id)
            return (protocol.REGISTERED, spec, self.sync_hours)

    def _sync(
        self,
        shard_id: int,
        hour: int,
        entries: List[IndexEntry],
        telemetry: Optional[Dict[str, Any]] = None,
    ):
        with self._cond:
            self._touch_locked(shard_id)
            if telemetry:
                self._telemetry[shard_id] = telemetry
            if self._failure is not None:
                return (protocol.ABORT, self._failure)
            if shard_id in self._evicted:
                return (
                    protocol.ABORT,
                    f"shard {shard_id} was evicted: {self._evicted[shard_id]}",
                )
            if shard_id not in self._registered:
                # A stray batch must not count toward (or corrupt) the
                # barrier; diagnose it instead of letting a later broadcast
                # lookup blow up on a legit worker's handler thread.
                self._fail_locked(
                    f"protocol violation: sync from unregistered shard {shard_id}"
                )
                return (protocol.ABORT, self._failure)
            if hour in self._replayed_broadcasts:
                # A restored campaign: the round was already merged (and its
                # outcome fsynced) before the crash; the restarted shard
                # deterministically re-derived the same batch and gets the
                # stored broadcast back without a barrier.
                return self._replayed_sync_locked(shard_id, hour, entries)
            if hour not in self.sync_hours or hour in self._completed_hours:
                self._fail_locked(
                    f"protocol violation: sync at unscheduled or already "
                    f"completed hour {hour}"
                )
                return (protocol.ABORT, self._failure)
            batches = self._round_batches.setdefault(hour, {})
            if shard_id in batches:
                self._fail_locked(
                    f"protocol violation: duplicate sync from shard "
                    f"{shard_id} at hour {hour}"
                )
                return (protocol.ABORT, self._failure)
            self._round_opened.setdefault(hour, time.monotonic())
            batches[shard_id] = entries
            self._maybe_complete_round_locked(hour)
            while hour not in self._round_broadcasts and self._failure is None:
                self._cond.wait(timeout=1.0)
                self._enforce_round_deadline_locked(hour)
            if self._failure is not None:
                return (protocol.ABORT, self._failure)
            broadcast = self._round_broadcasts[hour][shard_id]
            # Free the round's payloads once every live worker has fetched
            # its broadcast — a long campaign must not accumulate every
            # round's raw embedding batches in server memory.
            pending = self._round_pending_fetch[hour]
            pending.discard(shard_id)
            if not pending:
                self._cleanup_round_locked(hour)
            return (protocol.BROADCAST, broadcast)

    def _maybe_complete_round_locked(self, hour: int) -> None:
        """Complete the round when every live shard's batch is in.

        The completing thread computes every worker's (novelty-pruned)
        broadcast under the lock, in sorted shard order — timing cannot leak
        into the merged index or the broadcasts.
        """
        if hour in self._round_broadcasts:
            return
        batches = self._round_batches.get(hour)
        if not batches:
            return
        live = self._live_shard_ids_locked()
        if not live or any(sid not in batches for sid in live):
            return
        self._round_broadcasts[hour] = self.coordinator.complete_round(batches)
        self._round_pending_fetch[hour] = set(batches)
        self._rounds_completed += 1
        # Log the round before any broadcast is released: once a worker has
        # seen the merge, a restart must be able to replay it.
        self._append_snapshot_locked(hour, batches)
        self._cond.notify_all()

    def _cleanup_round_locked(self, hour: int) -> None:
        self._completed_hours.add(hour)
        del self._round_batches[hour]
        del self._round_broadcasts[hour]
        del self._round_pending_fetch[hour]
        self._round_opened.pop(hour, None)

    def _report(self, report: WorkerReport):
        with self._cond:
            self._touch_locked(report.shard_id)
            if self._failure is not None:
                return (protocol.ABORT, self._failure)
            if report.shard_id in self._evicted:
                return (
                    protocol.ABORT,
                    f"shard {report.shard_id} was evicted: "
                    f"{self._evicted[report.shard_id]}",
                )
            if report.shard_id not in self._registered:
                self._fail_locked(
                    f"protocol violation: report from unregistered shard "
                    f"{report.shard_id}"
                )
                return (protocol.ABORT, self._failure)
            if report.shard_id in self.reports:
                self._fail_locked(
                    f"protocol violation: duplicate report for shard "
                    f"{report.shard_id}"
                )
                return (protocol.ABORT, self._failure)
            self.coordinator.absorb(report.unsynced_entries)
            self.reports[report.shard_id] = report
            if report.telemetry:
                self._telemetry[report.shard_id] = report.telemetry
            if self._completed_locked():
                self._done.set()
                self._cond.notify_all()
            return (protocol.OK,)

    def _shutdown_requested(self) -> None:
        with self._cond:
            self._touch_locked()
            if not self._completed_locked():
                self._fail_locked("shutdown requested before campaign completed")
        # Stop serving from a helper thread: stop() joins the serve-forever
        # thread, which is fine from a handler thread but must not run under
        # the condition lock.
        threading.Thread(target=self.stop, daemon=True).start()
