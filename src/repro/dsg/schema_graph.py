"""The schema graph (paper §3.3): tables, columns and joinability edges.

Vertices are tables and columns; a table–table edge means the two tables can be
joined through a primary–foreign key relationship, a table–column edge means the
column belongs to the table (and can receive a filter during the random walk).
The graph is also the skeleton that KQE extends into the plan-iterative graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import networkx as nx

from repro.catalog.schema import DatabaseSchema


@dataclass(frozen=True)
class JoinEdge:
    """A joinable table pair: ``child.column`` references ``parent.column``."""

    child: str
    parent: str
    column: str

    def other(self, table: str) -> str:
        """The table on the other side of the edge."""
        if table == self.child:
            return self.parent
        if table == self.parent:
            return self.child
        raise KeyError(f"{table!r} is not an endpoint of {self}")

    def direction_from(self, table: str) -> str:
        """``"to_parent"`` when walking from child to parent, else ``"to_child"``."""
        if table == self.child:
            return "to_parent"
        if table == self.parent:
            return "to_child"
        raise KeyError(f"{table!r} is not an endpoint of {self}")


class SchemaGraph:
    """Graph view over a normalized database schema."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self.graph = nx.Graph()
        self._join_edges: List[JoinEdge] = []
        for table in schema.tables:
            self.graph.add_node(table.name, kind="table")
            for column in table.columns:
                if column.name == "RowID":
                    continue
                column_node = f"{table.name}.{column.name}"
                self.graph.add_node(column_node, kind="column",
                                    dtype=column.dtype.name.value)
                self.graph.add_edge(table.name, column_node, kind="table-column")
        for fk in schema.foreign_keys:
            edge = JoinEdge(child=fk.table, parent=fk.ref_table, column=fk.columns[0])
            self._join_edges.append(edge)
            self.graph.add_edge(fk.table, fk.ref_table, kind="table-table",
                                column=fk.columns[0])

    # ------------------------------------------------------------------ queries

    @property
    def table_names(self) -> List[str]:
        """All table vertices."""
        return [n for n, data in self.graph.nodes(data=True) if data["kind"] == "table"]

    @property
    def join_edges(self) -> List[JoinEdge]:
        """All PK–FK join edges."""
        return list(self._join_edges)

    def edges_of(self, table: str) -> List[JoinEdge]:
        """Join edges incident to *table*."""
        return [edge for edge in self._join_edges if table in (edge.child, edge.parent)]

    def edges_from_set(self, tables: Set[str]) -> List[Tuple[str, JoinEdge]]:
        """Join edges from any table in *tables* to a table outside it.

        Returns ``(anchor_table, edge)`` pairs where ``anchor_table`` is the
        already-included endpoint.
        """
        frontier: List[Tuple[str, JoinEdge]] = []
        for edge in self._join_edges:
            if edge.child in tables and edge.parent not in tables:
                frontier.append((edge.child, edge))
            elif edge.parent in tables and edge.child not in tables:
                frontier.append((edge.parent, edge))
        return frontier

    def columns_of(self, table: str) -> List[str]:
        """Non-RowID column names of *table*."""
        return [c.name for c in self.schema.table(table).columns if c.name != "RowID"]

    def degree(self, table: str) -> int:
        """Number of join edges incident to *table*."""
        return len(self.edges_of(table))

    def is_connected(self) -> bool:
        """True when every table can be reached from every other via join edges."""
        tables = self.table_names
        if len(tables) <= 1:
            return True
        table_graph = nx.Graph()
        table_graph.add_nodes_from(tables)
        for edge in self._join_edges:
            table_graph.add_edge(edge.child, edge.parent)
        return nx.is_connected(table_graph)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"SchemaGraph(tables={len(self.table_names)}, "
            f"join_edges={len(self._join_edges)})"
        )
