"""Schema normalization: split the wide table into 3NF tables (paper §3.1).

The decomposition follows classic 3NF synthesis over the minimal cover of the
discovered functional dependencies: one table per determinant group, plus a hub
table holding a candidate key of the wide relation so that the decomposition is
lossless.  Every generated table carries an explicit ``RowID`` surrogate primary
key; the implicit (FD-derived) key and the implicit foreign keys are recorded in
the schema metadata, because those are what the join query generator walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.catalog.column import Column
from repro.catalog.schema import DatabaseSchema, ForeignKey
from repro.catalog.table import KeyConstraint, TableSchema
from repro.dsg.bitmap import JoinBitmapIndex
from repro.dsg.fd import FDDiscovery, FunctionalDependency
from repro.dsg.rowid_map import RowIDMap
from repro.dsg.widetable import WideTable
from repro.errors import NormalizationError
from repro.sqlvalue.datatypes import bigint
from repro.sqlvalue.values import is_null, normalize_row
from repro.storage.database import Database


def attribute_closure(attributes: Iterable[str],
                      fds: Sequence[FunctionalDependency]) -> Set[str]:
    """Closure of an attribute set under a set of FDs."""
    closure = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if set(fd.lhs) <= closure and fd.rhs not in closure:
                closure.add(fd.rhs)
                changed = True
    return closure


def minimal_cover(fds: Sequence[FunctionalDependency]) -> List[FunctionalDependency]:
    """Compute a minimal cover: reduced left sides, no redundant dependencies."""
    # Left-reduction: drop extraneous LHS attributes.
    reduced: List[FunctionalDependency] = []
    for fd in fds:
        lhs = list(fd.lhs)
        for attribute in list(lhs):
            if len(lhs) == 1:
                break
            candidate = [a for a in lhs if a != attribute]
            if fd.rhs in attribute_closure(candidate, fds):
                lhs = candidate
        reduced.append(FunctionalDependency(tuple(lhs), fd.rhs))
    # Remove duplicates while preserving order.
    seen = set()
    unique: List[FunctionalDependency] = []
    for fd in reduced:
        key = (tuple(sorted(fd.lhs)), fd.rhs)
        if key not in seen:
            seen.add(key)
            unique.append(fd)
    # Redundancy elimination: drop FDs derivable from the rest.
    result = list(unique)
    for fd in list(unique):
        remaining = [other for other in result if other != fd]
        if fd.rhs in attribute_closure(fd.lhs, remaining):
            result = remaining
    return result


def candidate_key(columns: Sequence[str],
                  fds: Sequence[FunctionalDependency]) -> Tuple[str, ...]:
    """A candidate key of the wide relation (greedy attribute removal)."""
    key = list(columns)
    for column in list(key):
        trial = [c for c in key if c != column]
        if attribute_closure(trial, fds) >= set(columns):
            key = trial
    return tuple(key)


@dataclass(frozen=True)
class DecomposedTable:
    """One table of the decomposition: its data columns and implicit key."""

    name: str
    columns: Tuple[str, ...]
    implicit_key: Tuple[str, ...]
    is_hub: bool = False


@dataclass
class NormalizedDatabase:
    """Everything DSG needs after normalization.

    The wide table, the normalized schema and data, the RowID map, the join
    bitmap index, the minimal-cover FDs and the decomposition metadata travel
    together because noise injection and ground-truth recovery must keep them
    mutually consistent.
    """

    wide: WideTable
    schema: DatabaseSchema
    database: Database
    rowid_map: RowIDMap
    bitmap: JoinBitmapIndex
    fds: List[FunctionalDependency]
    tables: List[DecomposedTable]
    hub_table: str

    def table_meta(self, name: str) -> DecomposedTable:
        """Decomposition metadata of one table."""
        for table in self.tables:
            if table.name == name:
                return table
        raise NormalizationError(f"no decomposed table named {name!r}")

    def data_columns(self, name: str) -> Tuple[str, ...]:
        """Data columns (without RowID) of one table."""
        return self.table_meta(name).columns

    def parent_of_fk(self, fk: ForeignKey) -> str:
        """Parent (referenced) table of a foreign key."""
        return fk.ref_table


class SchemaNormalizer:
    """Builds a :class:`NormalizedDatabase` from a wide table."""

    def __init__(
        self,
        wide: WideTable,
        fds: Optional[Sequence[FunctionalDependency]] = None,
        max_lhs_size: int = 2,
        max_tables: int = 8,
        key_override: Optional[Sequence[str]] = None,
    ) -> None:
        self.wide = wide
        self.max_lhs_size = max_lhs_size
        self.max_tables = max_tables
        self.key_override = tuple(key_override) if key_override else None
        if fds is None:
            fds = FDDiscovery(wide, max_lhs_size=max_lhs_size).discover()
        self.fds = minimal_cover(list(fds))

    # ---------------------------------------------------------------- structure

    def _determinant_groups(self) -> Dict[Tuple[str, ...], Set[str]]:
        groups: Dict[Tuple[str, ...], Set[str]] = {}
        for fd in self.fds:
            groups.setdefault(tuple(fd.lhs), set()).update({fd.rhs})
        return groups

    def decompose(self) -> List[DecomposedTable]:
        """Compute the decomposition (without materializing data)."""
        columns = list(self.wide.column_names)
        groups = self._determinant_groups()
        key = self.key_override or candidate_key(columns, self.fds)
        raw_tables: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
        for lhs, rhs in groups.items():
            table_columns = tuple(c for c in columns if c in set(lhs) | rhs)
            raw_tables.append((table_columns, lhs))
        # Hub table: ensure a table contains the candidate key.
        if not any(set(key) <= set(cols) for cols, _ in raw_tables):
            raw_tables.insert(0, (key, key))
        # Drop tables contained in another table.
        kept: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
        for cols, lhs in raw_tables:
            if any(set(cols) < set(other) for other, _ in raw_tables if other != cols):
                continue
            if any(set(cols) == set(other) for other, _ in kept):
                continue
            kept.append((cols, lhs))
        kept = kept[: self.max_tables]
        # Order: hub (candidate-key table) first, then by descending width.
        def is_hub(entry: Tuple[Tuple[str, ...], Tuple[str, ...]]) -> bool:
            return set(key) <= set(entry[0])

        kept.sort(key=lambda entry: (not is_hub(entry), -len(entry[0]), entry[0]))
        tables: List[DecomposedTable] = []
        for index, (cols, lhs) in enumerate(kept, start=1):
            hub = is_hub((cols, lhs))
            implicit = key if hub else lhs
            tables.append(
                DecomposedTable(
                    name=f"T{index}",
                    columns=cols,
                    implicit_key=tuple(implicit),
                    is_hub=hub,
                )
            )
        if not tables:
            raise NormalizationError("decomposition produced no tables")
        return tables

    # -------------------------------------------------------------- materialize

    def _table_schema(self, table: DecomposedTable) -> TableSchema:
        columns = [Column("RowID", bigint(20, nullable=False), "surrogate key")]
        for name in table.columns:
            columns.append(self.wide.column(name))
        return TableSchema(
            table.name,
            columns,
            primary_key=("RowID",),
            implicit_key=table.implicit_key,
            keys=(KeyConstraint(tuple(table.implicit_key), unique=True,
                                name=f"ik_{table.name}"),),
        )

    def _foreign_keys(self, tables: List[DecomposedTable]) -> List[ForeignKey]:
        foreign_keys: List[ForeignKey] = []
        for child in tables:
            for parent in tables:
                if child.name == parent.name:
                    continue
                if len(parent.implicit_key) != 1:
                    continue
                key_column = parent.implicit_key[0]
                if key_column not in child.columns:
                    continue
                if child.implicit_key == parent.implicit_key:
                    continue
                foreign_keys.append(
                    ForeignKey(
                        table=child.name,
                        columns=(key_column,),
                        ref_table=parent.name,
                        ref_columns=(key_column,),
                        name=f"fk_{child.name}_{parent.name}",
                    )
                )
        return foreign_keys

    def build(self, database_name: str = "tqs_testdb") -> NormalizedDatabase:
        """Decompose the wide table and materialize schema, data and indexes."""
        tables = self.decompose()
        schemas = [self._table_schema(table) for table in tables]
        foreign_keys = self._foreign_keys(tables)
        schema = DatabaseSchema(schemas, foreign_keys, name=database_name)
        database = Database(schema)
        rowid_map = RowIDMap([table.name for table in tables])
        bitmap = JoinBitmapIndex(len(self.wide), [table.name for table in tables])
        # Materialize every table by distinct projection keyed on the implicit key.
        key_index: Dict[str, Dict[Tuple, int]] = {table.name: {} for table in tables}
        for wide_id, wide_row in enumerate(self.wide.rows):
            rowid_map.add_wide_row()
            for table in tables:
                key_values = tuple(wide_row[c] for c in table.implicit_key)
                if any(is_null(v) for v in key_values):
                    continue
                lookup = key_index[table.name]
                # Keys are deduplicated under SQL value equality (0 == -0,
                # 1 == 1.0), so one parent row represents every spelling of the
                # same key value; this is what lets the 0 / -0 hash-join bugs
                # manifest as missing matches rather than never firing.
                normalized_key = normalize_row(key_values)
                if normalized_key not in lookup:
                    row_id = len(lookup)
                    lookup[normalized_key] = row_id
                    stored = {"RowID": row_id}
                    for column in table.columns:
                        stored[column] = wide_row[column]
                    database.insert(table.name, stored)
                row_id = lookup[normalized_key]
                rowid_map.set(wide_id, table.name, row_id)
                bitmap.set(table.name, wide_id, True)
        hub = next((table.name for table in tables if table.is_hub), tables[0].name)
        return NormalizedDatabase(
            wide=self.wide,
            schema=schema,
            database=database,
            rowid_map=rowid_map,
            bitmap=bitmap,
            fds=list(self.fds),
            tables=tables,
            hub_table=hub,
        )


def normalize(wide: WideTable, fds: Optional[Sequence[FunctionalDependency]] = None,
              max_lhs_size: int = 2,
              key_override: Optional[Sequence[str]] = None) -> NormalizedDatabase:
    """Convenience wrapper: discover FDs (if needed), decompose and materialize."""
    return SchemaNormalizer(wide, fds=fds, max_lhs_size=max_lhs_size,
                            key_override=key_override).build()
