"""DSG: Data-guided Schema and query Generation (paper §3)."""

from repro.dsg.bitmap import Bitmap, JoinBitmapIndex, wah_decode, wah_encode
from repro.dsg.datasets import DATASETS, DatasetSpec, build_dataset
from repro.dsg.fd import FDDiscovery, FunctionalDependency, discover_fds, transitive_closure
from repro.dsg.ground_truth import GroundTruth, GroundTruthOracle, VerificationMode
from repro.dsg.hintgen import HintGenerator, TransformedQuery
from repro.dsg.noise import NoiseEvent, NoiseInjector, NoiseReport, inject_noise
from repro.dsg.normalization import (
    DecomposedTable,
    NormalizedDatabase,
    SchemaNormalizer,
    attribute_closure,
    candidate_key,
    minimal_cover,
    normalize,
)
from repro.dsg.pipeline import DSG, DSGConfig
from repro.dsg.query_gen import (
    CandidateExtension,
    GenerationConfig,
    RandomWalkQueryGenerator,
)
from repro.dsg.rowid_map import RowIDMap
from repro.dsg.schema_graph import JoinEdge, SchemaGraph
from repro.dsg.widetable import WideTable

__all__ = [
    "Bitmap",
    "CandidateExtension",
    "DATASETS",
    "DSG",
    "DSGConfig",
    "DatasetSpec",
    "DecomposedTable",
    "FDDiscovery",
    "FunctionalDependency",
    "GenerationConfig",
    "GroundTruth",
    "GroundTruthOracle",
    "HintGenerator",
    "JoinBitmapIndex",
    "JoinEdge",
    "NoiseEvent",
    "NoiseInjector",
    "NoiseReport",
    "NormalizedDatabase",
    "RandomWalkQueryGenerator",
    "RowIDMap",
    "SchemaGraph",
    "SchemaNormalizer",
    "TransformedQuery",
    "VerificationMode",
    "WideTable",
    "attribute_closure",
    "build_dataset",
    "candidate_key",
    "discover_fds",
    "inject_noise",
    "minimal_cover",
    "normalize",
    "transitive_closure",
    "wah_decode",
    "wah_encode",
]
