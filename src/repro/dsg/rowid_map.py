"""The RowID map table (paper §3.1, Figure 4(a)).

For each wide-table row the map records which row of each schema table that wide
row was split into (or ``None`` when the wide row contributes nothing to a table,
e.g. after noise injection).  The inverse direction — all wide rows produced by a
given table row — is what the noise synchronizer needs (``RowMap(T_i, row_j)``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class RowIDMap:
    """Mapping wide-row id -> {table name: table row id or None}."""

    def __init__(self, table_names: Sequence[str]) -> None:
        self.table_names = list(table_names)
        self._rows: List[Dict[str, Optional[int]]] = []

    def __len__(self) -> int:
        return len(self._rows)

    def add_wide_row(self, mapping: Optional[Dict[str, Optional[int]]] = None) -> int:
        """Register a new wide row; returns its RowID."""
        entry = {name: None for name in self.table_names}
        if mapping:
            for name, row_id in mapping.items():
                if name not in entry:
                    raise KeyError(f"unknown table {name!r} in RowID map entry")
                entry[name] = row_id
        self._rows.append(entry)
        return len(self._rows) - 1

    def get(self, wide_row: int, table: str) -> Optional[int]:
        """Table row id that wide row *wide_row* maps to in *table* (or None)."""
        return self._rows[wide_row][table]

    def set(self, wide_row: int, table: str, row_id: Optional[int]) -> None:
        """Update one mapping cell (noise synchronization)."""
        if table not in self._rows[wide_row]:
            raise KeyError(f"unknown table {table!r} in RowID map")
        self._rows[wide_row][table] = row_id

    def entry(self, wide_row: int) -> Dict[str, Optional[int]]:
        """The full mapping of one wide row."""
        return dict(self._rows[wide_row])

    def wide_rows_of(self, table: str, row_id: int) -> List[int]:
        """All wide rows that were split to create row *row_id* of *table*.

        This is the ``RowMap(T_i, row_j)`` lookup of the Case 1 / Case 2 noise
        synchronization rules.
        """
        return [
            wide_row
            for wide_row, entry in enumerate(self._rows)
            if entry.get(table) == row_id
        ]

    def tables_mapped(self, wide_row: int) -> List[str]:
        """Tables that wide row *wide_row* contributes a row to."""
        return [name for name, row_id in self._rows[wide_row].items() if row_id is not None]

    def copy(self) -> "RowIDMap":
        """Deep copy."""
        clone = RowIDMap(self.table_names)
        clone._rows = [dict(entry) for entry in self._rows]
        return clone

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"RowIDMap(tables={self.table_names}, wide_rows={len(self)})"
