"""Join bitmap index with WAH-style run-length compression (paper §3.1, §3.4).

One :class:`Bitmap` per schema table, with one bit per wide-table row: bit *i* is
set when wide row *i* produced a row in that table.  The per-join-type rules of
Table 2 combine these bitmaps with AND / OR / NOT to recover the ground-truth
row-id set of a join chain.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GroundTruthError


class Bitmap:
    """A fixed-length bit array supporting the bitwise operators of Table 2."""

    __slots__ = ("size", "_bits")

    def __init__(self, size: int, bits: Optional[int] = None) -> None:
        if size < 0:
            raise GroundTruthError("bitmap size must be non-negative")
        self.size = size
        self._bits = 0 if bits is None else bits & ((1 << size) - 1 if size else 0)

    # ----------------------------------------------------------------- construction

    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "Bitmap":
        """Build a bitmap with the given positions set."""
        bitmap = cls(size)
        for index in indices:
            bitmap.set(index)
        return bitmap

    @classmethod
    def ones(cls, size: int) -> "Bitmap":
        """A bitmap with every bit set."""
        return cls(size, (1 << size) - 1 if size else 0)

    # ---------------------------------------------------------------------- access

    def set(self, index: int, value: bool = True) -> None:
        """Set or clear one bit."""
        self._check(index)
        if value:
            self._bits |= 1 << index
        else:
            self._bits &= ~(1 << index)

    def get(self, index: int) -> bool:
        """Read one bit."""
        self._check(index)
        return bool((self._bits >> index) & 1)

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise GroundTruthError(f"bit index {index} out of range [0, {self.size})")

    def indices(self) -> List[int]:
        """Positions of all set bits, ascending."""
        result = []
        bits = self._bits
        position = 0
        while bits:
            if bits & 1:
                result.append(position)
            bits >>= 1
            position += 1
        return result

    def count(self) -> int:
        """Number of set bits."""
        return bin(self._bits).count("1")

    def density(self) -> float:
        """Fraction of set bits (0 for an empty bitmap)."""
        return self.count() / self.size if self.size else 0.0

    def extend(self, extra_bits: int = 1) -> None:
        """Grow the bitmap by *extra_bits* cleared bits (new wide rows)."""
        if extra_bits < 0:
            raise GroundTruthError("cannot shrink a bitmap")
        self.size += extra_bits

    # ------------------------------------------------------------------ operators

    def _combine(self, other: "Bitmap", bits: int) -> "Bitmap":
        if self.size != other.size:
            raise GroundTruthError(
                f"bitmap sizes differ: {self.size} vs {other.size}"
            )
        return Bitmap(self.size, bits)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return self._combine(other, self._bits & other._bits)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return self._combine(other, self._bits | other._bits)

    def __xor__(self, other: "Bitmap") -> "Bitmap":
        return self._combine(other, self._bits ^ other._bits)

    def __invert__(self) -> "Bitmap":
        mask = (1 << self.size) - 1 if self.size else 0
        return Bitmap(self.size, (~self._bits) & mask)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Bitmap)
            and self.size == other.size
            and self._bits == other._bits
        )

    def __hash__(self) -> int:
        return hash((self.size, self._bits))

    def copy(self) -> "Bitmap":
        """A copy of this bitmap."""
        return Bitmap(self.size, self._bits)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Bitmap(size={self.size}, set={self.count()})"


# ----------------------------------------------------------------- WAH encoding

_WORD = 31
"""Payload bits per WAH word (32-bit words with one flag bit)."""


def wah_encode(bitmap: Bitmap) -> List[Tuple[str, int]]:
    """Encode a bitmap with Word-Aligned Hybrid run-length encoding.

    Returns a list of ``("literal", payload)`` and ``("fill", (bit, count))``
    words.  Fill words compress runs of identical 31-bit groups, which is what
    makes sparse join bitmaps cheap to store (paper §3.1).
    """
    words: List[Tuple[str, int]] = []
    groups = []
    for start in range(0, bitmap.size, _WORD):
        payload = 0
        for offset in range(min(_WORD, bitmap.size - start)):
            if bitmap.get(start + offset):
                payload |= 1 << offset
        groups.append(payload)
    full = (1 << _WORD) - 1
    index = 0
    while index < len(groups):
        payload = groups[index]
        if payload in (0, full):
            run = 1
            while index + run < len(groups) and groups[index + run] == payload:
                run += 1
            words.append(("fill", (1 if payload == full else 0, run)))
            index += run
        else:
            words.append(("literal", payload))
            index += 1
    return words


def wah_decode(words: Sequence[Tuple[str, int]], size: int) -> Bitmap:
    """Decode a WAH word sequence back into a bitmap of the given size."""
    bitmap = Bitmap(size)
    position = 0
    for kind, value in words:
        if kind == "literal":
            for offset in range(_WORD):
                if position + offset >= size:
                    break
                if (value >> offset) & 1:
                    bitmap.set(position + offset)
            position += _WORD
        elif kind == "fill":
            bit, count = value
            length = count * _WORD
            if bit:
                for offset in range(length):
                    if position + offset >= size:
                        break
                    bitmap.set(position + offset)
            position += length
        else:  # pragma: no cover - defensive
            raise GroundTruthError(f"unknown WAH word kind {kind!r}")
    return bitmap


def wah_compressed_words(bitmap: Bitmap) -> int:
    """Number of WAH words needed for *bitmap* (used by the bitmap ablation bench)."""
    return len(wah_encode(bitmap))


class JoinBitmapIndex:
    """The per-table join bitmaps over one wide table."""

    def __init__(self, wide_size: int, table_names: Sequence[str]) -> None:
        self.wide_size = wide_size
        self._bitmaps: Dict[str, Bitmap] = {
            name: Bitmap(wide_size) for name in table_names
        }

    @property
    def table_names(self) -> List[str]:
        """Tables covered by the index."""
        return list(self._bitmaps)

    def bitmap(self, table: str) -> Bitmap:
        """The bitmap of one table."""
        try:
            return self._bitmaps[table]
        except KeyError:
            raise GroundTruthError(f"no join bitmap for table {table!r}") from None

    def set(self, table: str, row_id: int, value: bool = True) -> None:
        """Set/clear the bit of (table, wide row)."""
        self.bitmap(table).set(row_id, value)

    def get(self, table: str, row_id: int) -> bool:
        """Read the bit of (table, wide row)."""
        return self.bitmap(table).get(row_id)

    def add_wide_row(self) -> int:
        """Register a new wide row (noise insertion); returns its RowID."""
        for bitmap in self._bitmaps.values():
            bitmap.extend(1)
        self.wide_size += 1
        return self.wide_size - 1

    def sparsity_ranked_tables(self, tables: Sequence[str]) -> List[str]:
        """Order tables from most to least sparse bitmap (jump-intersection order)."""
        return sorted(tables, key=lambda name: self.bitmap(name).count())

    def intersect(self, tables: Sequence[str]) -> Bitmap:
        """AND the bitmaps of several tables, most sparse first (§3.4)."""
        if not tables:
            return Bitmap.ones(self.wide_size)
        ordered = self.sparsity_ranked_tables(tables)
        result = self.bitmap(ordered[0]).copy()
        for name in ordered[1:]:
            result = result & self.bitmap(name)
        return result

    def copy(self) -> "JoinBitmapIndex":
        """Deep copy of the index."""
        clone = JoinBitmapIndex(self.wide_size, list(self._bitmaps))
        for name, bitmap in self._bitmaps.items():
            clone._bitmaps[name] = bitmap.copy()
        return clone
