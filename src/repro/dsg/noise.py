"""Noise injection with wide-table synchronization (paper §3.2).

The injector corrupts a small fraction of the primary / foreign key cells of the
normalized tables with boundary values and NULLs, then re-synchronizes the wide
table, the RowID map and the join bitmap index with the Case 1 / Case 2 rules so
the ground truth recovered from the wide table stays exact.

Beyond the paper's boundary values we optionally plant *adversarial pairs*: two
distinct 17-digit integers that collide once a buggy engine compares join keys in
the ``double`` domain (the Figure 1(b) bug class).  Both values are unique, so the
ground truth is unaffected; only a precision-losing engine sees a spurious match.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from decimal import Decimal
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.catalog.schema import ForeignKey
from repro.dsg.fd import transitive_closure
from repro.dsg.normalization import NormalizedDatabase
from repro.errors import NoiseInjectionError
from repro.sqlvalue.datatypes import DataType, TypeCategory
from repro.sqlvalue.values import NULL, canonical_numeric, is_null


@dataclass(frozen=True)
class NoiseEvent:
    """One injected noise value and where it went."""

    table: str
    row_id: int
    column: str
    old_value: Any
    new_value: Any
    case: int  # 1 = implicit primary key, 2 = foreign key


@dataclass
class NoiseReport:
    """Summary of an injection run, consumed by the query generator."""

    events: List[NoiseEvent] = field(default_factory=list)
    touched_tables: Set[str] = field(default_factory=set)
    augmented_tables: Set[str] = field(default_factory=set)
    adversarial_pairs: List[Tuple[str, Any, Any]] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Number of injected noise values."""
        return len(self.events)


class NoiseInjector:
    """Injects key noise into a :class:`NormalizedDatabase` and keeps it consistent."""

    def __init__(
        self,
        ndb: NormalizedDatabase,
        rng: Optional[random.Random] = None,
        epsilon: float = 0.08,
        null_fraction: float = 0.4,
        adversarial_pairs: bool = True,
    ) -> None:
        if not 0 <= epsilon <= 1:
            raise NoiseInjectionError("epsilon must be within [0, 1]")
        self.ndb = ndb
        self.rng = rng or random.Random(17)
        self.epsilon = epsilon
        self.null_fraction = null_fraction
        self.adversarial_pairs = adversarial_pairs
        self._used_values: Dict[str, Set[Any]] = {}

    # ------------------------------------------------------------------ values

    def _existing_values(self, column: str) -> Set[Any]:
        if column not in self._used_values:
            values = set()
            for value in self.ndb.wide.column_values(column):
                if not is_null(value):
                    values.add(canonical_numeric(value))
            self._used_values[column] = values
        return self._used_values[column]

    def _unique_noise_value(self, column: str, dtype: DataType, salt: int) -> Any:
        """Pick a boundary-style value absent from *column* (canonical equality)."""
        existing = self._existing_values(column)
        candidates: List[Any] = list(dtype.boundary_values())
        category = dtype.category
        for attempt in range(64):
            if attempt < len(candidates):
                candidate = candidates[attempt]
            elif category is TypeCategory.STRING:
                candidate = f"ZZ_{salt}_{attempt}"
            elif category is TypeCategory.FLOAT:
                candidate = 1e15 + salt * 997 + attempt
            elif category is TypeCategory.DECIMAL:
                candidate = Decimal(90_000_000 + salt * 1_009 + attempt)
            else:
                candidate = 2_000_000_000 + salt * 1_013 + attempt
            canonical = canonical_numeric(candidate)
            if canonical not in existing:
                existing.add(canonical)
                return candidate
        raise NoiseInjectionError(f"could not find a unique noise value for {column!r}")

    # ------------------------------------------------------------------ helpers

    def _dependent_columns(self, column: str) -> Set[str]:
        """``Fd(col_k)``: columns transitively determined by *column*."""
        return transitive_closure(column, self.ndb.fds)

    def _dependent_tables(self, columns: Set[str]) -> List[str]:
        """Tables whose data columns are fully contained in *columns* (``T(...)``)."""
        result = []
        for table in self.ndb.tables:
            if set(table.columns) <= columns:
                result.append(table.name)
        return result

    # -------------------------------------------------------------------- cases

    def _inject_case1(self, table: str, row_id: int, column: str, noise_value: Any) -> None:
        """Noise in an implicit primary key column (paper Case 1)."""
        ndb = self.ndb
        affected_wide = ndb.rowid_map.wide_rows_of(table, row_id)
        dependents = self._dependent_columns(column)
        # Corrupt the stored table cell.
        ndb.database.update_cell(table, row_id, column, noise_value)
        # Insertion: a new wide row carrying the noisy key and its dependents.
        if affected_wide:
            template = ndb.wide.row(affected_wide[0])
            new_row = {column: noise_value}
            for dependent in dependents:
                new_row[dependent] = template[dependent]
        else:  # pragma: no cover - defensive
            new_row = {column: noise_value}
        new_wide_id = ndb.wide.append(new_row)
        ndb.rowid_map.add_wide_row()
        ndb.bitmap.add_wide_row()
        copied_columns = {column} | dependents
        for dep_table in self._dependent_tables(copied_columns):
            if dep_table == table:
                ndb.rowid_map.set(new_wide_id, dep_table, row_id)
                ndb.bitmap.set(dep_table, new_wide_id, True)
                continue
            if affected_wide:
                mapped = ndb.rowid_map.get(affected_wide[0], dep_table)
                if mapped is not None:
                    ndb.rowid_map.set(new_wide_id, dep_table, mapped)
                    ndb.bitmap.set(dep_table, new_wide_id, True)
        ndb.rowid_map.set(new_wide_id, table, row_id)
        ndb.bitmap.set(table, new_wide_id, True)
        # Update: the old wide rows lose the dependent values and their links to
        # the corrupted table *and* every ancestor table reachable only through
        # it (their key copies in the wide row are NULL now, so keeping the link
        # would let the oracle read stale attribute values).
        dependent_tables = set(self._dependent_tables(copied_columns)) | {table}
        for wide_id in affected_wide:
            for dependent in dependents:
                ndb.wide.set_cell(wide_id, dependent, NULL)
            for dep_table in dependent_tables:
                ndb.rowid_map.set(wide_id, dep_table, None)
                ndb.bitmap.set(dep_table, wide_id, False)
        self._note(table, augmented=True)

    def _inject_case2(self, table: str, row_id: int, column: str, noise_value: Any,
                      fk: ForeignKey) -> None:
        """Noise in a foreign key column (paper Case 2)."""
        ndb = self.ndb
        affected_wide = ndb.rowid_map.wide_rows_of(table, row_id)
        dependents = self._dependent_columns(column)
        ndb.database.update_cell(table, row_id, column, noise_value)
        # Insertion: preserve the parent-side content in a fresh wide row.
        copied_columns = {column} | dependents
        new_row: Dict[str, Any] = {}
        if affected_wide:
            template = ndb.wide.row(affected_wide[0])
            for copied in copied_columns:
                new_row[copied] = template[copied]
        new_wide_id = ndb.wide.append(new_row)
        ndb.rowid_map.add_wide_row()
        ndb.bitmap.add_wide_row()
        dependent_tables = self._dependent_tables(copied_columns)
        for dep_table in dependent_tables:
            if not affected_wide:
                continue
            mapped = ndb.rowid_map.get(affected_wide[0], dep_table)
            if mapped is not None:
                ndb.rowid_map.set(new_wide_id, dep_table, mapped)
                ndb.bitmap.set(dep_table, new_wide_id, True)
            self._note(dep_table, augmented=True)
        # Update: the affected wide rows carry the noisy FK and lose the
        # parent-derived values, and drop their link to the parent-side tables.
        for wide_id in affected_wide:
            ndb.wide.set_cell(wide_id, column, noise_value)
            for dependent in dependents:
                ndb.wide.set_cell(wide_id, dependent, NULL)
            for dep_table in dependent_tables:
                if dep_table == table:
                    continue
                ndb.rowid_map.set(wide_id, dep_table, None)
                ndb.bitmap.set(dep_table, wide_id, False)
        self._note(table)

    def _note(self, table: str, augmented: bool = False) -> None:
        self._report.touched_tables.add(table)
        if augmented:
            self._report.augmented_tables.add(table)

    # ------------------------------------------------------------------- driver

    def _target_rows(self, table: str) -> List[int]:
        row_count = self.ndb.database.row_count(table)
        if row_count == 0:
            return []
        count = max(1, int(round(self.epsilon * row_count)))
        count = min(count, row_count)
        return self.rng.sample(range(row_count), count)

    def _fk_of(self, table: str, column: str) -> Optional[ForeignKey]:
        for fk in self.ndb.schema.foreign_keys:
            if fk.table == table and column in fk.columns:
                return fk
        return None

    def inject(self) -> NoiseReport:
        """Run the injection and return a :class:`NoiseReport`."""
        self._report = NoiseReport()
        salt = 0
        # Case 2: foreign key columns of child tables.
        for fk in self.ndb.schema.foreign_keys:
            column = fk.columns[0]
            dtype = self.ndb.schema.table(fk.table).column(column).dtype
            for row_id in self._target_rows(fk.table):
                salt += 1
                old_value = self.ndb.database.table(fk.table).rows[row_id][column]
                if is_null(old_value):
                    continue
                if self.rng.random() < self.null_fraction:
                    noise_value: Any = NULL
                else:
                    noise_value = self._unique_noise_value(column, dtype, salt)
                self._inject_case2(fk.table, row_id, column, noise_value, fk)
                self._report.events.append(
                    NoiseEvent(fk.table, row_id, column, old_value, noise_value, case=2)
                )
        # Case 1: implicit primary keys of parent (dimension) tables.
        parent_tables = {fk.ref_table for fk in self.ndb.schema.foreign_keys}
        for table_meta in self.ndb.tables:
            if table_meta.is_hub or table_meta.name not in parent_tables:
                continue
            if len(table_meta.implicit_key) != 1:
                continue
            column = table_meta.implicit_key[0]
            dtype = self.ndb.schema.table(table_meta.name).column(column).dtype
            for row_id in self._target_rows(table_meta.name):
                salt += 1
                old_value = self.ndb.database.table(table_meta.name).rows[row_id][column]
                if is_null(old_value):
                    continue
                if self.rng.random() < self.null_fraction:
                    noise_value = NULL
                else:
                    noise_value = self._unique_noise_value(column, dtype, salt)
                self._inject_case1(table_meta.name, row_id, column, noise_value)
                self._report.events.append(
                    NoiseEvent(table_meta.name, row_id, column, old_value, noise_value, case=1)
                )
        if self.adversarial_pairs:
            self._inject_adversarial_pairs()
        return self._report

    # ---------------------------------------------------------- adversarial pairs

    _PAIR_BASE = 9_007_199_254_740_992  # 2**53: consecutive integers collide as double

    def _inject_adversarial_pairs(self) -> None:
        """Plant double-collision values into one FK / parent-key pair per edge."""
        for pair_index, fk in enumerate(self.ndb.schema.foreign_keys):
            column = fk.columns[0]
            dtype = self.ndb.schema.table(fk.table).column(column).dtype
            if dtype.category not in (TypeCategory.INTEGER, TypeCategory.DECIMAL):
                continue
            child_rows = self.ndb.database.row_count(fk.table)
            parent_rows = self.ndb.database.row_count(fk.ref_table)
            if child_rows == 0 or parent_rows == 0:
                continue
            base = self._PAIR_BASE + pair_index * 64
            child_value = base + 1
            parent_value = base
            existing = self._existing_values(column)
            if canonical_numeric(child_value) in existing or (
                canonical_numeric(parent_value) in existing
            ):
                continue
            existing.update({canonical_numeric(child_value), canonical_numeric(parent_value)})
            child_row = self.rng.randrange(child_rows)
            parent_row = self.rng.randrange(parent_rows)
            old_child = self.ndb.database.table(fk.table).rows[child_row][column]
            old_parent = self.ndb.database.table(fk.ref_table).rows[parent_row][column]
            if is_null(old_child) or is_null(old_parent):
                continue
            self._inject_case2(fk.table, child_row, column, child_value, fk)
            self._report.events.append(
                NoiseEvent(fk.table, child_row, column, old_child, child_value, case=2)
            )
            self._inject_case1(fk.ref_table, parent_row, column, parent_value)
            self._report.events.append(
                NoiseEvent(fk.ref_table, parent_row, column, old_parent, parent_value, case=1)
            )
            self._report.adversarial_pairs.append((column, child_value, parent_value))


def inject_noise(ndb: NormalizedDatabase, rng: Optional[random.Random] = None,
                 epsilon: float = 0.08, adversarial_pairs: bool = True) -> NoiseReport:
    """Convenience wrapper around :class:`NoiseInjector`."""
    injector = NoiseInjector(ndb, rng=rng, epsilon=epsilon,
                             adversarial_pairs=adversarial_pairs)
    return injector.inject()
