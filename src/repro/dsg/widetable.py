"""The wide table: the single denormalized relation DSG starts from (paper §3.1).

A :class:`WideTable` is the dataset ``d`` of Algorithm 1 viewed as one relation.
Every row has an implicit ``RowID`` equal to its position; the ground-truth oracle
recovers join results by selecting wide rows through the join bitmap index and
re-evaluating filters/projections against them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.catalog.column import Column
from repro.errors import SchemaError
from repro.sqlvalue.values import NULL, is_null, null_if_none

WideRow = Dict[str, Any]


class WideTable:
    """A denormalized table with named, typed columns."""

    def __init__(self, columns: Sequence[Column], rows: Optional[Iterable[Mapping[str, Any]]] = None,
                 name: str = "wide") -> None:
        if not columns:
            raise SchemaError("a wide table needs at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name = {column.name: column for column in self.columns}
        if len(self._by_name) != len(self.columns):
            raise SchemaError("duplicate column names in wide table")
        self._rows: List[WideRow] = []
        if rows is not None:
            for row in rows:
                self.append(row)

    # ------------------------------------------------------------------- basics

    @property
    def column_names(self) -> Tuple[str, ...]:
        """All column names in declaration order."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Column definition by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"wide table has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """True when *name* is a wide-table column."""
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[WideRow]:
        return iter(self._rows)

    @property
    def rows(self) -> List[WideRow]:
        """All rows (mutable list, used by the noise synchronizer)."""
        return self._rows

    def row(self, row_id: int) -> WideRow:
        """Row by its RowID (position)."""
        return self._rows[row_id]

    # ---------------------------------------------------------------- mutation

    def append(self, row: Mapping[str, Any]) -> int:
        """Append a row (missing columns become NULL) and return its RowID."""
        stored: WideRow = {}
        for column in self.columns:
            stored[column.name] = null_if_none(row.get(column.name, NULL))
        unknown = set(row) - set(self.column_names)
        if unknown:
            raise SchemaError(f"unknown wide-table columns {sorted(unknown)}")
        self._rows.append(stored)
        return len(self._rows) - 1

    def set_cell(self, row_id: int, column: str, value: Any) -> None:
        """Overwrite one cell (noise synchronization)."""
        if column not in self._by_name:
            raise SchemaError(f"wide table has no column {column!r}")
        self._rows[row_id][column] = null_if_none(value)

    # ------------------------------------------------------------------ queries

    def column_values(self, column: str) -> List[Any]:
        """All values of one column in RowID order."""
        self.column(column)
        return [row[column] for row in self._rows]

    def distinct_values(self, column: str) -> List[Any]:
        """Distinct non-NULL values of a column."""
        seen: List[Any] = []
        keys = set()
        for value in self.column_values(column):
            if is_null(value):
                continue
            key = (type(value).__name__, str(value))
            if key not in keys:
                keys.add(key)
                seen.append(value)
        return seen

    def projection(self, columns: Sequence[str], row_ids: Optional[Iterable[int]] = None
                   ) -> List[Tuple[Any, ...]]:
        """Project (a subset of) rows onto *columns*."""
        ids = range(len(self._rows)) if row_ids is None else row_ids
        return [tuple(self._rows[i][c] for c in columns) for i in ids]

    def copy(self) -> "WideTable":
        """Deep-enough copy (rows copied, column objects shared)."""
        clone = WideTable(self.columns, name=self.name)
        clone._rows = [dict(row) for row in self._rows]
        return clone

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"WideTable({self.name!r}, columns={len(self.columns)}, rows={len(self)})"
