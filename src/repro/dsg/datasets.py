"""Synthetic wide-table datasets used by the testing campaigns.

The paper builds its wide table from the UCI KDD-Cup 1998 donation data and from
TPC-H samples; neither is available offline, so this module generates synthetic
wide tables with the same structural properties (planted functional dependencies,
skewed value distributions, numeric/decimal/varchar key columns, corner-case
values such as ``-0.0`` and 17-digit identifiers) that exercise exactly the same
DSG pipeline and fault triggers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from decimal import Decimal
from typing import Callable, Dict, List, Optional, Tuple

from repro.catalog.column import Column
from repro.dsg.fd import FunctionalDependency
from repro.dsg.widetable import WideTable
from repro.sqlvalue.datatypes import (
    bigint,
    char,
    decimal,
    double,
    integer,
    varchar,
)


@dataclass
class DatasetSpec:
    """A generated wide table plus the dependencies that were planted in it."""

    name: str
    wide: WideTable
    planted_fds: List[FunctionalDependency]
    key_columns: Tuple[str, ...]
    description: str = ""


DatasetBuilder = Callable[[int, random.Random], DatasetSpec]


# ----------------------------------------------------------------- shopping data

def shopping_orders(num_rows: int = 200, rng: Optional[random.Random] = None) -> DatasetSpec:
    """The shopping-order wide table of Figure 3 (orders x goods x users)."""
    rng = rng or random.Random(7)
    goods = []
    names = ["book", "food", "flower", "pen", "cup", "lamp", "chair", "desk"]
    for index, name in enumerate(names):
        goods.append((1111 + index, name))
    # two extra goods ids sharing an existing name so goodsName -/-> goodsId
    goods.append((1111 + len(names), "book"))
    goods.append((1112 + len(names), "food"))
    price_of = {name: Decimal(str(5 * (i % 5) + 5)) for i, name in enumerate(sorted(set(names)))}
    users = [(f"str{i}", name) for i, name in enumerate(
        ["Tom", "Peter", "Bob", "Alice", "Eve", "Tom", "Carol", "Dave"], start=1)]
    columns = [
        Column("orderId", varchar(12), "order identifier"),
        Column("goodsId", bigint(20), "implicit key of the goods table"),
        Column("goodsName", varchar(40), "goods name, determines price"),
        Column("userId", varchar(16), "implicit key of the users table"),
        Column("userName", varchar(40)),
        Column("price", decimal(8, 2)),
    ]
    table = WideTable(columns, name="shopping")
    order_seq = 1
    while len(table) < num_rows:
        order_id = f"{order_seq:04d}"
        order_seq += 1
        user_id, user_name = rng.choice(users)
        for _ in range(rng.randint(1, 3)):
            if len(table) >= num_rows:
                break
            goods_id, goods_name = rng.choice(goods)
            table.append(
                {
                    "orderId": order_id,
                    "goodsId": goods_id,
                    "goodsName": goods_name,
                    "userId": user_id,
                    "userName": user_name,
                    "price": price_of[goods_name],
                }
            )
    planted = [
        FunctionalDependency(("goodsId",), "goodsName"),
        FunctionalDependency(("goodsName",), "price"),
        FunctionalDependency(("userId",), "userName"),
    ]
    return DatasetSpec(
        name="shopping",
        wide=table,
        planted_fds=planted,
        key_columns=("orderId", "goodsId", "userId"),
        description="Shopping-order dataset from Figure 3 of the paper.",
    )


# ------------------------------------------------------------------ KDD-Cup data

def kddcup_donations(num_rows: int = 240, rng: Optional[random.Random] = None) -> DatasetSpec:
    """A KDD-Cup-1998-like donation wide table (donors, campaigns, amount tiers).

    ``amount`` is a decimal key with fractional values (trigger for the cached
    constant bug) and ``donorId`` is a 16-digit bigint (trigger substrate for the
    varchar/double precision-loss bugs once noise adds near-collision values).
    """
    rng = rng or random.Random(11)
    states = ["CA", "NY", "TX", "WA", "IL", "FL"]
    donors = []
    for index in range(24):
        donor_id = 9_000_000_000_000_000 + index * 37
        donors.append((donor_id, rng.choice(states), 20 + (index * 3) % 60))
    campaigns = [(500 + i, f"campaign_{chr(97 + i)}") for i in range(8)]
    amounts = [Decimal("5.00"), Decimal("10.50"), Decimal("25.25"), Decimal("25.75"),
               Decimal("50.00"), Decimal("99.99"), Decimal("100.01")]
    tier_of = {}
    for amount in amounts:
        if amount < 25:
            tier_of[amount] = "small"
        elif amount < 100:
            tier_of[amount] = "medium"
        else:
            tier_of[amount] = "large"
    columns = [
        Column("donationId", bigint(20), "one row per donation"),
        Column("donorId", bigint(20), "implicit key of the donors table"),
        Column("donorState", char(2)),
        Column("donorAge", integer(4)),
        Column("campaignId", bigint(20), "implicit key of the campaigns table"),
        Column("campaignName", varchar(40)),
        Column("amount", decimal(8, 2), "implicit key of the amount-tier table"),
        Column("amountTier", varchar(12)),
    ]
    table = WideTable(columns, name="kddcup")
    for index in range(num_rows):
        donor_id, state, age = rng.choice(donors)
        campaign_id, campaign_name = rng.choice(campaigns)
        amount = rng.choice(amounts)
        table.append(
            {
                "donationId": 10_000 + index,
                "donorId": donor_id,
                "donorState": state,
                "donorAge": age,
                "campaignId": campaign_id,
                "campaignName": campaign_name,
                "amount": amount,
                "amountTier": tier_of[amount],
            }
        )
    planted = [
        FunctionalDependency(("donationId",), "donorId"),
        FunctionalDependency(("donationId",), "campaignId"),
        FunctionalDependency(("donationId",), "amount"),
        FunctionalDependency(("donorId",), "donorState"),
        FunctionalDependency(("donorId",), "donorAge"),
        FunctionalDependency(("campaignId",), "campaignName"),
        FunctionalDependency(("amount",), "amountTier"),
    ]
    return DatasetSpec(
        name="kddcup",
        wide=table,
        planted_fds=planted,
        key_columns=("donationId",),
        description="KDD-Cup-1998-like donation dataset (donors, campaigns, tiers).",
    )


# -------------------------------------------------------------------- TPC-H data

def tpch_like(num_rows: int = 240, rng: Optional[random.Random] = None) -> DatasetSpec:
    """A TPC-H-like lineitem wide table (parts, suppliers, customers, discounts).

    ``discount`` is a float key whose domain includes ``0.0`` and ``-0.0``: this
    is the substrate for the hash-join / merge-join negative-zero bugs of
    Figure 1(a) and Table 4 id 14.
    """
    rng = rng or random.Random(13)
    parts = [(2_000 + i, f"part_{i:03d}") for i in range(16)]
    suppliers = [(3_000 + i, f"supplier_{i:02d}") for i in range(8)]
    nations = ["FRANCE", "GERMANY", "CHINA", "BRAZIL", "KENYA"]
    customers = [(4_000 + i, f"customer_{i:02d}", nations[i % len(nations)]) for i in range(12)]
    discounts = [0.0, -0.0, 0.05, 0.1, 0.25]
    band_of = {0.0: "none", -0.0: "none", 0.05: "low", 0.1: "mid", 0.25: "high"}
    columns = [
        Column("orderKey", bigint(20)),
        Column("lineNumber", integer(4)),
        Column("partKey", bigint(20), "implicit key of the parts table"),
        Column("partName", varchar(32)),
        Column("suppKey", bigint(20), "implicit key of the suppliers table"),
        Column("suppName", varchar(32)),
        Column("custKey", bigint(20), "implicit key of the customers table"),
        Column("custName", varchar(32)),
        Column("custNation", varchar(24)),
        Column("extendedPrice", decimal(10, 2)),
        Column("discount", double(), "implicit key of the discount-band table"),
        Column("discountBand", varchar(8)),
    ]
    table = WideTable(columns, name="tpch")
    order_key = 100
    while len(table) < num_rows:
        order_key += 1
        cust_key, cust_name, nation = rng.choice(customers)
        for line_number in range(1, rng.randint(2, 4) + 1):
            if len(table) >= num_rows:
                break
            part_key, part_name = rng.choice(parts)
            supp_key, supp_name = rng.choice(suppliers)
            discount = rng.choice(discounts)
            table.append(
                {
                    "orderKey": order_key,
                    "lineNumber": line_number,
                    "partKey": part_key,
                    "partName": part_name,
                    "suppKey": supp_key,
                    "suppName": supp_name,
                    "custKey": cust_key,
                    "custName": cust_name,
                    "custNation": nation,
                    "extendedPrice": Decimal(str(round(rng.uniform(10, 900), 2))),
                    "discount": discount,
                    "discountBand": band_of[discount],
                }
            )
    planted = [
        FunctionalDependency(("orderKey", "lineNumber"), "partKey"),
        FunctionalDependency(("orderKey", "lineNumber"), "suppKey"),
        FunctionalDependency(("orderKey", "lineNumber"), "discount"),
        FunctionalDependency(("orderKey", "lineNumber"), "extendedPrice"),
        FunctionalDependency(("orderKey",), "custKey"),
        FunctionalDependency(("partKey",), "partName"),
        FunctionalDependency(("suppKey",), "suppName"),
        FunctionalDependency(("custKey",), "custName"),
        FunctionalDependency(("custKey",), "custNation"),
        FunctionalDependency(("discount",), "discountBand"),
    ]
    return DatasetSpec(
        name="tpch",
        wide=table,
        planted_fds=planted,
        key_columns=("orderKey", "lineNumber"),
        description="TPC-H-like lineitem sample joined with its dimensions.",
    )


DATASETS: Dict[str, DatasetBuilder] = {
    "shopping": shopping_orders,
    "kddcup": kddcup_donations,
    "tpch": tpch_like,
}
"""Registry of dataset builders by name."""


def build_dataset(name: str, num_rows: int = 200,
                  rng: Optional[random.Random] = None) -> DatasetSpec:
    """Build a registered dataset by name."""
    try:
        builder = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}") from None
    return builder(num_rows, rng or random.Random(0))
