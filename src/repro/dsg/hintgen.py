"""Hint-set generation: turn one logical query into several transformed queries.

``HintGen`` (Algorithm 1, line 11) picks the hint sets that are relevant for a
given query -- there is no point forcing a merge join on a query without joins,
or disabling semi-join transformation when the query has no semi/anti step -- and
returns the transformed queries the engine will execute.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.optimizer.hints import (
    HintSet,
    bka_join_hints,
    block_nested_loop_hints,
    bnlh_join_hints,
    default_hints,
    hash_join_hints,
    index_join_hints,
    join_buffer_minimal_hints,
    join_cache_off_hints,
    join_order_hints,
    merge_join_hints,
    nested_loop_hints,
    no_materialization_hints,
    no_semijoin_hints,
)
from repro.plan.logical import JoinType, QuerySpec


@dataclass(frozen=True)
class TransformedQuery:
    """A (query, hint set) pair: one physical variant of a logical query."""

    query: QuerySpec
    hints: HintSet

    def render(self) -> str:
        """SQL text with the hint comment embedded."""
        return self.query.render(self.hints.render_comment())


class HintGenerator:
    """Selects the hint sets relevant to a query and builds transformed queries."""

    def __init__(self, rng: Optional[random.Random] = None,
                 max_hint_sets: Optional[int] = None) -> None:
        self.rng = rng or random.Random(31)
        self.max_hint_sets = max_hint_sets

    def hint_sets_for(self, query: QuerySpec) -> List[HintSet]:
        """Hint sets worth trying for *query* (always starting with the default)."""
        join_types = set(query.join_types)
        hints: List[HintSet] = [
            default_hints(),
            hash_join_hints(),
            block_nested_loop_hints(),
            nested_loop_hints(),
            merge_join_hints(),
            bka_join_hints(),
            bnlh_join_hints(),
            index_join_hints(),
            join_buffer_minimal_hints(1),
        ]
        if join_types & {JoinType.SEMI, JoinType.ANTI}:
            hints.append(no_materialization_hints())
            hints.append(no_semijoin_hints())
            hints.append(no_materialization_hints(hash_join_hints()))
        if join_types & {JoinType.LEFT_OUTER, JoinType.RIGHT_OUTER, JoinType.FULL_OUTER}:
            hints.append(join_cache_off_hints("join_cache_hashed"))
            hints.append(join_cache_off_hints("join_cache_bka"))
            hints.append(join_cache_off_hints("outer_join_with_cache"))
        if len(query.joins) >= 2:
            order = list(query.aliases)
            tail = order[1:]
            self.rng.shuffle(tail)
            hints.append(join_order_hints([order[0]] + tail))
        if self.max_hint_sets is not None and len(hints) > self.max_hint_sets:
            head, tail = hints[:1], hints[1:]
            self.rng.shuffle(tail)
            hints = head + tail[: self.max_hint_sets - 1]
        return hints

    def transform(self, query: QuerySpec) -> List[TransformedQuery]:
        """Build the transformed queries for *query* (``trans_q`` of Algorithm 1)."""
        return [TransformedQuery(query, hints) for hints in self.hint_sets_for(query)]
