"""Random-walk join query generation (paper §3.3, Figure 5).

The generator walks the schema graph starting from a random table vertex.  Each
table–table edge it crosses becomes a join step (whose join type is drawn from a
weighted distribution), each table–column edge becomes a filter predicate, and the
result is assembled into a :class:`~repro.plan.logical.QuerySpec` -- the AST of
Figure 5.

Join-type choices are restricted to the configurations for which the bitmap
ground truth of §3.4 is exact (see DESIGN.md §4): outer joins preserve the
foreign-key (child) side, semi/anti joins always probe the parent side, full
outer joins are only generated between noise-free tables, and cross joins are
verified as subsets.

KQE plugs into :meth:`RandomWalkQueryGenerator.generate` through the
``extension_chooser`` callback, which scores candidate extensions of the current
query graph and may terminate the walk early (Algorithm 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dsg.noise import NoiseReport
from repro.dsg.normalization import NormalizedDatabase
from repro.dsg.schema_graph import SchemaGraph
from repro.errors import GenerationError
from repro.expr.ast import ColumnRef, Expression, conjoin
from repro.expr.builder import PredicateBuilder
from repro.plan.logical import (
    AggregateFunction,
    JoinStep,
    JoinType,
    QuerySpec,
    SelectItem,
    TableRef,
)

DEFAULT_JOIN_TYPE_WEIGHTS: Dict[JoinType, float] = {
    JoinType.INNER: 0.40,
    JoinType.LEFT_OUTER: 0.16,
    JoinType.RIGHT_OUTER: 0.08,
    JoinType.FULL_OUTER: 0.04,
    JoinType.SEMI: 0.14,
    JoinType.ANTI: 0.12,
    JoinType.CROSS: 0.06,
}


@dataclass(frozen=True)
class CandidateExtension:
    """One possible next step of the random walk."""

    anchor: str
    new_table: str
    column: Optional[str]
    join_type: JoinType


@dataclass
class GenerationConfig:
    """Knobs of the query generator."""

    min_joins: int = 1
    max_joins: int = 4
    filter_probability: float = 0.45
    aggregate_probability: float = 0.08
    max_projections: int = 4
    allow_cross: bool = True
    join_type_weights: Dict[JoinType, float] = field(
        default_factory=lambda: dict(DEFAULT_JOIN_TYPE_WEIGHTS)
    )


ExtensionChooser = Callable[
    [TableRef, List[JoinStep], List[CandidateExtension]], Optional[CandidateExtension]
]


class RandomWalkQueryGenerator:
    """Generates multi-table join queries by random walk on the schema graph."""

    def __init__(
        self,
        ndb: NormalizedDatabase,
        noise_report: Optional[NoiseReport] = None,
        rng: Optional[random.Random] = None,
        config: Optional[GenerationConfig] = None,
    ) -> None:
        self.ndb = ndb
        self.noise_report = noise_report
        self.rng = rng or random.Random(23)
        self.config = config or GenerationConfig()
        self.graph = SchemaGraph(ndb.schema)
        self._predicates = PredicateBuilder(self.rng)
        if not self.graph.join_edges:
            raise GenerationError("schema graph has no join edges; nothing to generate")

    # ------------------------------------------------------------------ helpers

    def _noisy_tables(self) -> Set[str]:
        if self.noise_report is None:
            return set()
        return set(self.noise_report.touched_tables) | set(
            self.noise_report.augmented_tables
        )

    def _allowed_join_types(self, direction: str, is_first_step: bool,
                            anchor: str, new_table: str) -> List[JoinType]:
        allowed = [JoinType.INNER]
        if direction == "to_parent":
            allowed.extend([JoinType.LEFT_OUTER, JoinType.SEMI, JoinType.ANTI])
        elif is_first_step:
            allowed.append(JoinType.RIGHT_OUTER)
        if is_first_step and not ({anchor, new_table} & self._noisy_tables()):
            allowed.append(JoinType.FULL_OUTER)
        if self.config.allow_cross:
            allowed.append(JoinType.CROSS)
        return allowed

    def _candidates(self, used: Set[str], exposed: Set[str],
                    is_first_step: bool) -> List[CandidateExtension]:
        candidates: List[CandidateExtension] = []
        for anchor, edge in self.graph.edges_from_set(used):
            if anchor not in exposed:
                continue
            new_table = edge.other(anchor)
            direction = edge.direction_from(anchor)
            for join_type in self._allowed_join_types(direction, is_first_step,
                                                      anchor, new_table):
                column = None if join_type is JoinType.CROSS else edge.column
                candidates.append(
                    CandidateExtension(anchor, new_table, column, join_type)
                )
        return candidates

    def _default_chooser(self, base: TableRef, steps: List[JoinStep],
                         candidates: List[CandidateExtension]) -> Optional[CandidateExtension]:
        weights = [
            max(1e-6, self.config.join_type_weights.get(candidate.join_type, 0.05))
            for candidate in candidates
        ]
        return self.rng.choices(candidates, weights=weights, k=1)[0]

    # ---------------------------------------------------------------- assembly

    def _build_step(self, candidate: CandidateExtension) -> JoinStep:
        table_ref = TableRef(candidate.new_table, candidate.new_table)
        if candidate.join_type is JoinType.CROSS:
            return JoinStep(table_ref, JoinType.CROSS)
        return JoinStep(
            table_ref,
            candidate.join_type,
            left_key=ColumnRef(candidate.anchor, candidate.column),
            right_key=ColumnRef(candidate.new_table, candidate.column),
        )

    def _column_pool(self, exposed: Sequence[str]) -> List[Tuple[str, str]]:
        pool: List[Tuple[str, str]] = []
        for table in exposed:
            for column in self.ndb.data_columns(table):
                pool.append((table, column))
        return pool

    def _build_filters(self, exposed: Sequence[str]) -> Optional[Expression]:
        predicates: List[Expression] = []
        for table, column in self._column_pool(exposed):
            if self.rng.random() >= self.config.filter_probability / max(
                1, len(self.ndb.data_columns(table))
            ):
                continue
            column_def = self.ndb.schema.table(table).column(column)
            observed = self.ndb.database.table(table).distinct_values(column)
            predicates.append(self._predicates.build(table, column_def, observed))
            if len(predicates) >= 2:
                break
        return conjoin(predicates)

    def _build_select(self, exposed: Sequence[str],
                      allow_aggregates: bool = True) -> Tuple[List[SelectItem], List[ColumnRef]]:
        pool = self._column_pool(exposed)
        self.rng.shuffle(pool)
        count = min(len(pool), self.rng.randint(1, self.config.max_projections))
        chosen = pool[:count]
        if (allow_aggregates and len(chosen) >= 2
                and self.rng.random() < self.config.aggregate_probability):
            group_columns = [ColumnRef(t, c) for t, c in chosen[:-1]]
            target_table, target_column = chosen[-1]
            aggregate = self.rng.choice(
                [AggregateFunction.COUNT, AggregateFunction.MIN, AggregateFunction.MAX]
            )
            select = [SelectItem(ref) for ref in group_columns]
            select.append(
                SelectItem(ColumnRef(target_table, target_column), aggregate=aggregate)
            )
            return select, group_columns
        return [SelectItem(ColumnRef(t, c)) for t, c in chosen], []

    # ------------------------------------------------------------------ public

    def generate(
        self,
        start_table: Optional[str] = None,
        walk_length: Optional[int] = None,
        extension_chooser: Optional[ExtensionChooser] = None,
    ) -> QuerySpec:
        """Generate one join query.

        Parameters
        ----------
        start_table:
            Table vertex to start the walk from (random when omitted).
        walk_length:
            Maximum number of join steps (random in ``[min_joins, max_joins]``
            when omitted).
        extension_chooser:
            KQE's adaptive chooser; receives the base table, the steps so far and
            the candidate extensions, returns the chosen extension or ``None`` to
            terminate the walk early.
        """
        tables = self.graph.table_names
        base_table = start_table or self.rng.choice(tables)
        if base_table not in tables:
            raise GenerationError(f"unknown start table {base_table!r}")
        chooser = extension_chooser or self._default_chooser
        length = walk_length if walk_length is not None else self.rng.randint(
            self.config.min_joins, self.config.max_joins
        )
        length = max(1, length)
        base = TableRef(base_table, base_table)
        used: Set[str] = {base_table}
        exposed: Set[str] = {base_table}
        steps: List[JoinStep] = []
        for step_index in range(length):
            candidates = self._candidates(used, exposed, is_first_step=step_index == 0)
            if not candidates:
                break
            candidate = chooser(base, steps, candidates)
            if candidate is None:
                break
            step = self._build_step(candidate)
            steps.append(step)
            used.add(candidate.new_table)
            if candidate.join_type.exposes_right_columns:
                exposed.add(candidate.new_table)
            if candidate.join_type in (JoinType.RIGHT_OUTER, JoinType.FULL_OUTER):
                # Right/full outer joins preserve the newly joined side; further
                # join steps over an already-filtered accumulation would break
                # the bitmap ground truth, so they terminate the walk.
                break
        if not steps:
            raise GenerationError(
                f"random walk from {base_table!r} could not produce any join step"
            )
        exposed_order = [base_table] + [
            step.table.table for step in steps if step.join_type.exposes_right_columns
        ]
        # Cross joins are verified as subsets (Table 2), which is incompatible
        # with aggregate values computed over the full cartesian product.
        has_cross = any(step.join_type is JoinType.CROSS for step in steps)
        select, group_by = self._build_select(exposed_order,
                                              allow_aggregates=not has_cross)
        where = self._build_filters(exposed_order)
        query = QuerySpec(
            base=base,
            joins=steps,
            select=select,
            where=where,
            group_by=group_by,
            distinct=True,
        )
        query.validate()
        return query

    def generate_many(self, count: int, **kwargs) -> List[QuerySpec]:
        """Generate several queries (skipping start tables that cannot extend)."""
        queries: List[QuerySpec] = []
        attempts = 0
        while len(queries) < count and attempts < count * 10:
            attempts += 1
            try:
                queries.append(self.generate(**kwargs))
            except GenerationError:
                continue
        return queries
