"""Random-walk join query generation (paper §3.3, Figure 5).

The generator walks the schema graph starting from a random table vertex.  Each
table–table edge it crosses becomes a join step (whose join type is drawn from a
weighted distribution), each table–column edge becomes a filter predicate, and the
result is assembled into a :class:`~repro.plan.logical.QuerySpec` -- the AST of
Figure 5.

Join-type choices are restricted to the configurations for which the bitmap
ground truth of §3.4 is exact (see DESIGN.md §4): outer joins preserve the
foreign-key (child) side, semi/anti joins always probe the parent side, full
outer joins are only generated between noise-free tables, and cross joins are
verified as subsets.

KQE plugs into :meth:`RandomWalkQueryGenerator.generate` through the
``extension_chooser`` callback, which scores candidate extensions of the current
query graph and may terminate the walk early (Algorithm 2).
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dsg.noise import NoiseReport
from repro.dsg.normalization import NormalizedDatabase
from repro.dsg.schema_graph import SchemaGraph
from repro.errors import GenerationError
from repro.expr.ast import ColumnRef, Comparison, Expression, ScalarSubquery, conjoin
from repro.expr.builder import PredicateBuilder
from repro.plan.logical import (
    AggregateFunction,
    AnyQuerySpec,
    CompoundQuerySpec,
    JoinStep,
    JoinType,
    QuerySpec,
    SelectItem,
    SetOperator,
    TableRef,
)
from repro.sqlvalue.datatypes import TypeCategory

logger = logging.getLogger(__name__)

DEFAULT_JOIN_TYPE_WEIGHTS: Dict[JoinType, float] = {
    JoinType.INNER: 0.40,
    JoinType.LEFT_OUTER: 0.16,
    JoinType.RIGHT_OUTER: 0.08,
    JoinType.FULL_OUTER: 0.04,
    JoinType.SEMI: 0.14,
    JoinType.ANTI: 0.12,
    JoinType.CROSS: 0.06,
}


@dataclass(frozen=True)
class CandidateExtension:
    """One possible next step of the random walk."""

    anchor: str
    new_table: str
    column: Optional[str]
    join_type: JoinType


@dataclass
class GenerationConfig:
    """Knobs of the query generator.

    The three widened-grammar probabilities (set operations, scalar
    subqueries, CTEs) default to 0.0, and the generator only draws from the
    RNG for a feature when its probability is strictly positive — so existing
    seeded campaigns replay byte-identically unless a knob is turned on.
    """

    min_joins: int = 1
    max_joins: int = 4
    filter_probability: float = 0.45
    aggregate_probability: float = 0.08
    max_projections: int = 4
    allow_cross: bool = True
    setop_probability: float = 0.0
    scalar_subquery_probability: float = 0.0
    cte_probability: float = 0.0
    max_setop_arms: int = 3
    join_type_weights: Dict[JoinType, float] = field(
        default_factory=lambda: dict(DEFAULT_JOIN_TYPE_WEIGHTS)
    )


ExtensionChooser = Callable[
    [TableRef, List[JoinStep], List[CandidateExtension]], Optional[CandidateExtension]
]


class RandomWalkQueryGenerator:
    """Generates multi-table join queries by random walk on the schema graph."""

    def __init__(
        self,
        ndb: NormalizedDatabase,
        noise_report: Optional[NoiseReport] = None,
        rng: Optional[random.Random] = None,
        config: Optional[GenerationConfig] = None,
    ) -> None:
        self.ndb = ndb
        self.noise_report = noise_report
        self.rng = rng or random.Random(23)
        self.config = config or GenerationConfig()
        self.graph = SchemaGraph(ndb.schema)
        self._predicates = PredicateBuilder(self.rng)
        self.rejected_queries = 0
        if not self.graph.join_edges:
            raise GenerationError("schema graph has no join edges; nothing to generate")

    # ------------------------------------------------------------------ helpers

    def _noisy_tables(self) -> Set[str]:
        if self.noise_report is None:
            return set()
        return set(self.noise_report.touched_tables) | set(
            self.noise_report.augmented_tables
        )

    def _allowed_join_types(self, direction: str, is_first_step: bool,
                            anchor: str, new_table: str) -> List[JoinType]:
        allowed = [JoinType.INNER]
        if direction == "to_parent":
            allowed.extend([JoinType.LEFT_OUTER, JoinType.SEMI, JoinType.ANTI])
        elif is_first_step:
            allowed.append(JoinType.RIGHT_OUTER)
        if is_first_step and not ({anchor, new_table} & self._noisy_tables()):
            allowed.append(JoinType.FULL_OUTER)
        if self.config.allow_cross:
            allowed.append(JoinType.CROSS)
        return allowed

    def _candidates(self, used: Set[str], exposed: Set[str],
                    is_first_step: bool) -> List[CandidateExtension]:
        candidates: List[CandidateExtension] = []
        for anchor, edge in self.graph.edges_from_set(used):
            if anchor not in exposed:
                continue
            new_table = edge.other(anchor)
            direction = edge.direction_from(anchor)
            for join_type in self._allowed_join_types(direction, is_first_step,
                                                      anchor, new_table):
                column = None if join_type is JoinType.CROSS else edge.column
                candidates.append(
                    CandidateExtension(anchor, new_table, column, join_type)
                )
        return candidates

    def _default_chooser(self, base: TableRef, steps: List[JoinStep],
                         candidates: List[CandidateExtension]) -> Optional[CandidateExtension]:
        weights = [
            max(1e-6, self.config.join_type_weights.get(candidate.join_type, 0.05))
            for candidate in candidates
        ]
        return self.rng.choices(candidates, weights=weights, k=1)[0]

    # ---------------------------------------------------------------- assembly

    def _build_step(self, candidate: CandidateExtension) -> JoinStep:
        table_ref = TableRef(candidate.new_table, candidate.new_table)
        if candidate.join_type is JoinType.CROSS:
            return JoinStep(table_ref, JoinType.CROSS)
        return JoinStep(
            table_ref,
            candidate.join_type,
            left_key=ColumnRef(candidate.anchor, candidate.column),
            right_key=ColumnRef(candidate.new_table, candidate.column),
        )

    def _column_pool(self, exposed: Sequence[str]) -> List[Tuple[str, str]]:
        pool: List[Tuple[str, str]] = []
        for table in exposed:
            for column in self.ndb.data_columns(table):
                pool.append((table, column))
        return pool

    def _build_filters(self, exposed: Sequence[str]) -> Optional[Expression]:
        predicates: List[Expression] = []
        for table, column in self._column_pool(exposed):
            if self.rng.random() >= self.config.filter_probability / max(
                1, len(self.ndb.data_columns(table))
            ):
                continue
            column_def = self.ndb.schema.table(table).column(column)
            observed = self.ndb.database.table(table).distinct_values(column)
            predicates.append(self._predicates.build(table, column_def, observed))
            if len(predicates) >= 2:
                break
        return conjoin(predicates)

    def _build_select(self, exposed: Sequence[str],
                      allow_aggregates: bool = True) -> Tuple[List[SelectItem], List[ColumnRef]]:
        pool = self._column_pool(exposed)
        self.rng.shuffle(pool)
        count = min(len(pool), self.rng.randint(1, self.config.max_projections))
        chosen = pool[:count]
        if (allow_aggregates and len(chosen) >= 2
                and self.rng.random() < self.config.aggregate_probability):
            group_columns = [ColumnRef(t, c) for t, c in chosen[:-1]]
            target_table, target_column = chosen[-1]
            aggregate = self.rng.choice(
                [AggregateFunction.COUNT, AggregateFunction.MIN, AggregateFunction.MAX]
            )
            select = [SelectItem(ref) for ref in group_columns]
            select.append(
                SelectItem(ColumnRef(target_table, target_column), aggregate=aggregate)
            )
            return select, group_columns
        return [SelectItem(ColumnRef(t, c)) for t, c in chosen], []

    _NUMERIC_CATEGORIES = (TypeCategory.INTEGER, TypeCategory.DECIMAL,
                           TypeCategory.FLOAT)

    def _build_scalar_subquery(
        self, exposed: Sequence[str], alias: str
    ) -> Optional[Tuple[ColumnRef, ScalarSubquery]]:
        """Build an uncorrelated single-row subquery domain-matched to a column.

        The inner query is ``SELECT agg(col) FROM table AS <alias>`` — an
        aggregate with no GROUP BY, so it returns exactly one row on every
        engine (SQLite silently takes the first row of a multi-row scalar
        subquery while DuckDB errors; single-row-by-construction sidesteps
        that divergence).  Aggregates are restricted to the exact ones —
        MIN / MAX, plus COUNT for integer columns — because AVG / SUM float
        drift could flip a comparison at the boundary and surface as a fake
        differential mismatch.  Columns are numeric only: MIN / MAX over
        strings would compare under engine collations the reference executor
        does not model.
        """
        pool = [
            (table, column)
            for table, column in self._column_pool(exposed)
            if self.ndb.schema.table(table).column(column).dtype.category
            in self._NUMERIC_CATEGORIES
        ]
        if not pool:
            return None
        table, column = self.rng.choice(pool)
        category = self.ndb.schema.table(table).column(column).dtype.category
        aggregates = [AggregateFunction.MIN, AggregateFunction.MAX]
        if category is TypeCategory.INTEGER:
            aggregates.append(AggregateFunction.COUNT)
        aggregate = self.rng.choice(aggregates)
        inner = QuerySpec(
            base=TableRef(table, alias),
            select=[SelectItem(ColumnRef(alias, column), aggregate=aggregate)],
            distinct=False,
        )
        inner.validate()
        return ColumnRef(table, column), ScalarSubquery(inner)

    _SCALAR_COMPARISON_OPS = ("<", "<=", ">", ">=", "=", "<>")

    def _build_scalar_subquery_filter(
        self, exposed: Sequence[str], alias: str
    ) -> Optional[Expression]:
        built = self._build_scalar_subquery(exposed, alias)
        if built is None:
            return None
        outer_ref, subquery = built
        op = self.rng.choice(self._SCALAR_COMPARISON_OPS)
        return Comparison(op, outer_ref, subquery)

    def _exposed_order(self, query: QuerySpec) -> List[str]:
        """The exposed-table order of *query*, as `generate` computed it."""
        return [query.base.table] + [
            step.table.table
            for step in query.joins
            if step.join_type.exposes_right_columns
        ]

    # ------------------------------------------------------------------ public

    def generate(
        self,
        start_table: Optional[str] = None,
        walk_length: Optional[int] = None,
        extension_chooser: Optional[ExtensionChooser] = None,
    ) -> QuerySpec:
        """Generate one join query.

        Parameters
        ----------
        start_table:
            Table vertex to start the walk from (random when omitted).
        walk_length:
            Maximum number of join steps (random in ``[min_joins, max_joins]``
            when omitted).
        extension_chooser:
            KQE's adaptive chooser; receives the base table, the steps so far and
            the candidate extensions, returns the chosen extension or ``None`` to
            terminate the walk early.
        """
        tables = self.graph.table_names
        base_table = start_table or self.rng.choice(tables)
        if base_table not in tables:
            raise GenerationError(f"unknown start table {base_table!r}")
        chooser = extension_chooser or self._default_chooser
        length = walk_length if walk_length is not None else self.rng.randint(
            self.config.min_joins, self.config.max_joins
        )
        length = max(1, length)
        base = TableRef(base_table, base_table)
        used: Set[str] = {base_table}
        exposed: Set[str] = {base_table}
        steps: List[JoinStep] = []
        for step_index in range(length):
            candidates = self._candidates(used, exposed, is_first_step=step_index == 0)
            if not candidates:
                break
            candidate = chooser(base, steps, candidates)
            if candidate is None:
                break
            step = self._build_step(candidate)
            steps.append(step)
            used.add(candidate.new_table)
            if candidate.join_type.exposes_right_columns:
                exposed.add(candidate.new_table)
            if candidate.join_type in (JoinType.RIGHT_OUTER, JoinType.FULL_OUTER):
                # Right/full outer joins preserve the newly joined side; further
                # join steps over an already-filtered accumulation would break
                # the bitmap ground truth, so they terminate the walk.
                break
        if not steps:
            raise GenerationError(
                f"random walk from {base_table!r} could not produce any join step"
            )
        exposed_order = [base_table] + [
            step.table.table for step in steps if step.join_type.exposes_right_columns
        ]
        # Cross joins are verified as subsets (Table 2), which is incompatible
        # with aggregate values computed over the full cartesian product.
        has_cross = any(step.join_type is JoinType.CROSS for step in steps)
        select, group_by = self._build_select(exposed_order,
                                              allow_aggregates=not has_cross)
        where = self._build_filters(exposed_order)
        subquery_probability = self.config.scalar_subquery_probability
        if (subquery_probability > 0
                and self.rng.random() < subquery_probability):
            predicate = self._build_scalar_subquery_filter(exposed_order, "sq0")
            if predicate is not None:
                where = conjoin([where, predicate])
        has_aggregates = bool(group_by) or any(
            item.aggregate is not None for item in select
        )
        if (subquery_probability > 0 and not has_aggregates
                and self.rng.random() < subquery_probability):
            # Scalar subqueries as select items only appear in plain
            # projections: mixing a bare subquery item into a GROUP BY
            # query is rejected by stricter engines (DuckDB) unless it is
            # grouped or aggregated.
            built = self._build_scalar_subquery(exposed_order, "sq1")
            if built is not None:
                _, subquery = built
                select = select + [SelectItem(subquery, alias="sq_value")]
        query = QuerySpec(
            base=base,
            joins=steps,
            select=select,
            where=where,
            group_by=group_by,
            distinct=True,
        )
        query.validate()
        return query

    def generate_statement(
        self,
        start_table: Optional[str] = None,
        walk_length: Optional[int] = None,
        extension_chooser: Optional[ExtensionChooser] = None,
    ) -> AnyQuerySpec:
        """Generate one statement: a plain query, a set operation, or a CTE.

        The first arm is a normal :meth:`generate` walk.  Further set-operation
        arms are *structural twins* of it — same base, joins, select list and
        grouping, with independently re-drawn WHERE filters.  Twins guarantee
        identical column types per select position, which sidesteps
        engine-specific implicit-cast widening on mixed-type UNIONs (DuckDB
        coerces INT ∪ VARCHAR to VARCHAR; the reference executor has no such
        lattice), while the differing filters still exercise real overlap:
        INTERSECT / EXCEPT / UNION over partially-agreeing row sets.
        """
        query = self.generate(start_table=start_table, walk_length=walk_length,
                              extension_chooser=extension_chooser)
        config = self.config
        arms = [query]
        operators: List[SetOperator] = []
        if (config.setop_probability > 0
                and self.rng.random() < config.setop_probability):
            operator = self.rng.choice([
                SetOperator.UNION,
                SetOperator.UNION_ALL,
                SetOperator.INTERSECT,
                SetOperator.EXCEPT,
            ])
            extra = self.rng.randint(1, max(1, config.max_setop_arms - 1))
            exposed_order = self._exposed_order(query)
            for _ in range(extra):
                arms.append(replace(query,
                                    where=self._build_filters(exposed_order)))
            operators = [operator] * (len(arms) - 1)
        cte_name = None
        if (config.cte_probability > 0
                and self.rng.random() < config.cte_probability):
            cte_name = "cte0"
        if len(arms) == 1 and cte_name is None:
            return query
        compound = CompoundQuerySpec(arms=arms, operators=operators,
                                     cte_name=cte_name)
        compound.validate()
        return compound

    def generate_many(
        self,
        count: int,
        start_table: Optional[str] = None,
        walk_length: Optional[int] = None,
        extension_chooser: Optional[ExtensionChooser] = None,
    ) -> List[QuerySpec]:
        """Generate several queries (skipping start tables that cannot extend).

        Rejections (walks that cannot produce a join step) are retried up to
        ``10 * count`` attempts and tallied in :attr:`rejected_queries`.  A
        shortfall is *reported*, not silently swallowed: callers sizing test
        pools or campaign batches on ``count`` would otherwise never learn
        they got fewer queries.
        """
        queries: List[QuerySpec] = []
        rejected = 0
        attempts = 0
        max_attempts = count * 10
        while len(queries) < count and attempts < max_attempts:
            attempts += 1
            try:
                queries.append(self.generate(
                    start_table=start_table,
                    walk_length=walk_length,
                    extension_chooser=extension_chooser,
                ))
            except GenerationError:
                rejected += 1
        self.rejected_queries += rejected
        if len(queries) < count:
            logger.warning(
                "generate_many produced %d of %d requested queries "
                "(%d attempts, %d rejected)",
                len(queries), count, attempts, rejected,
            )
        return queries
