"""The DSG facade: dataset -> normalized, noise-injected test database (``DBGen``).

:class:`DSG` wires the whole §3 pipeline together: build (or accept) a wide
table, discover FDs, normalize into 3NF tables with RowID map and join bitmap
index, inject noise with wide-table synchronization, and expose the random-walk
query generator, the hint generator and the ground-truth oracle over the result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.dsg.datasets import DatasetSpec, build_dataset
from repro.dsg.ground_truth import GroundTruth, GroundTruthOracle
from repro.dsg.hintgen import HintGenerator, TransformedQuery
from repro.dsg.noise import NoiseInjector, NoiseReport
from repro.dsg.normalization import NormalizedDatabase, SchemaNormalizer
from repro.dsg.query_gen import (
    ExtensionChooser,
    GenerationConfig,
    RandomWalkQueryGenerator,
)
from repro.dsg.schema_graph import SchemaGraph
from repro.dsg.widetable import WideTable
from repro.plan.logical import AnyQuerySpec, QuerySpec
from repro.storage.database import Database


@dataclass
class DSGConfig:
    """Configuration of the DSG pipeline."""

    dataset: str = "shopping"
    dataset_rows: int = 200
    seed: int = 7
    noise_epsilon: float = 0.08
    inject_noise: bool = True
    adversarial_pairs: bool = True
    max_fd_lhs: int = 2
    fd_source: str = "planted"
    generation: GenerationConfig = field(default_factory=GenerationConfig)
    max_hint_sets: Optional[int] = None


class DSG:
    """Data-guided Schema and query Generation over one dataset."""

    def __init__(self, config: Optional[DSGConfig] = None,
                 wide: Optional[WideTable] = None) -> None:
        self.config = config or DSGConfig()
        self.rng = random.Random(self.config.seed)
        if wide is not None:
            self.dataset = DatasetSpec(name="custom", wide=wide, planted_fds=[],
                                       key_columns=())
        else:
            self.dataset = build_dataset(
                self.config.dataset, self.config.dataset_rows,
                random.Random(self.config.seed),
            )
        # The paper discovers FDs with TANE/HyFD on large real datasets; our
        # synthetic wide tables are small enough that purely data-driven
        # discovery also surfaces spurious dependencies, so by default the
        # planted dependencies (which discovery provably includes, see the FD
        # tests) drive the decomposition.  Set ``fd_source='discovered'`` to run
        # the fully automatic pipeline.
        fds = None
        key_override = None
        if self.config.fd_source == "planted" and self.dataset.planted_fds:
            fds = self.dataset.planted_fds
            key_override = self.dataset.key_columns or None
        normalizer = SchemaNormalizer(
            self.dataset.wide,
            fds=fds,
            max_lhs_size=self.config.max_fd_lhs,
            key_override=key_override,
        )
        self.ndb: NormalizedDatabase = normalizer.build(
            database_name=f"tqs_{self.dataset.name}"
        )
        if self.config.inject_noise:
            injector = NoiseInjector(
                self.ndb,
                rng=random.Random(self.config.seed + 1),
                epsilon=self.config.noise_epsilon,
                adversarial_pairs=self.config.adversarial_pairs,
            )
            self.noise_report: Optional[NoiseReport] = injector.inject()
        else:
            self.noise_report = None
        self.schema_graph = SchemaGraph(self.ndb.schema)
        self.query_generator = RandomWalkQueryGenerator(
            self.ndb,
            noise_report=self.noise_report,
            rng=random.Random(self.config.seed + 2),
            config=self.config.generation,
        )
        self.hint_generator = HintGenerator(
            rng=random.Random(self.config.seed + 3),
            max_hint_sets=self.config.max_hint_sets,
        )
        self.oracle = GroundTruthOracle(self.ndb)

    # ------------------------------------------------------------------ access

    @property
    def database(self) -> Database:
        """The normalized, noise-injected test database."""
        return self.ndb.database

    @property
    def wide(self) -> WideTable:
        """The (noise-synchronized) wide table."""
        return self.ndb.wide

    # --------------------------------------------------------------- generation

    def generate_query(self, start_table: Optional[str] = None,
                       extension_chooser: Optional[ExtensionChooser] = None) -> QuerySpec:
        """Generate one join query by random walk (Algorithm 1, line 10).

        Always a plain :class:`QuerySpec` — the shape the bitmap ground-truth
        oracle supports.  The widened grammar (set operations, CTEs) lives in
        :meth:`generate_statement`, whose compound shapes only the
        differential oracle can adjudicate.
        """
        return self.query_generator.generate(
            start_table=start_table, extension_chooser=extension_chooser
        )

    def generate_statement(self, start_table: Optional[str] = None,
                           extension_chooser: Optional[ExtensionChooser] = None
                           ) -> AnyQuerySpec:
        """Generate one statement from the widened grammar.

        With the :class:`~repro.dsg.query_gen.GenerationConfig` probabilities
        at their 0.0 defaults this is exactly :meth:`generate_query`; turning
        on ``setop_probability`` / ``cte_probability`` admits
        :class:`~repro.plan.logical.CompoundQuerySpec` results.
        """
        return self.query_generator.generate_statement(
            start_table=start_table, extension_chooser=extension_chooser
        )

    def transform_query(self, query: QuerySpec) -> List[TransformedQuery]:
        """Build the hinted variants of a query (Algorithm 1, line 11)."""
        return self.hint_generator.transform(query)

    def ground_truth(self, query: QuerySpec) -> GroundTruth:
        """Recover the ground truth of a query (Algorithm 1, line 12)."""
        return self.oracle.compute(query)

    def describe(self) -> str:
        """Human-readable summary of the generated test database."""
        lines = [
            f"dataset: {self.dataset.name} ({len(self.dataset.wide)} wide rows)",
            f"tables: {', '.join(self.ndb.schema.table_names)}",
            f"foreign keys: {len(self.ndb.schema.foreign_keys)}",
            f"functional dependencies: {len(self.ndb.fds)}",
        ]
        if self.noise_report is not None:
            lines.append(
                f"noise events: {self.noise_report.count} "
                f"(augmented tables: {sorted(self.noise_report.augmented_tables)})"
            )
        return "\n".join(lines)
