"""Ground-truth result recovery from the wide table (paper §3.4, Table 2).

Given a join query generated on the normalized schema, the oracle combines the
per-table join bitmaps according to the join types of the chain, retrieves the
matching wide-table rows, and re-applies the query's filters, projections and
DISTINCT using the very same operator implementations the engines use -- so any
disagreement between an engine and the oracle is attributable to the engine's
join execution, not to divergent expression semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from repro.dsg.bitmap import Bitmap
from repro.dsg.normalization import NormalizedDatabase
from repro.engine.resultset import ResultSet
from repro.errors import GroundTruthError
from repro.plan.logical import JoinType, QuerySpec
from repro.plan.operators import Filter, Project
from repro.plan.physical import ExecRow, PhysicalOperator
from repro.sqlvalue.values import NULL


class VerificationMode(enum.Enum):
    """How the engine result must relate to the ground truth (Table 2)."""

    FULL_SET = "full_set"
    SUBSET = "subset"


@dataclass
class GroundTruth:
    """The oracle's answer for one query."""

    result: ResultSet
    mode: VerificationMode
    wide_row_ids: List[int]

    def matches(self, observed: ResultSet) -> bool:
        """Check an engine result set against the ground truth."""
        if self.mode is VerificationMode.FULL_SET:
            return observed.normalized() == self.result.normalized()
        return self.result.normalized() <= observed.normalized()


class _StaticRows(PhysicalOperator):
    """A physical operator replaying pre-built rows (the selected wide rows)."""

    def __init__(self, rows: List[ExecRow], columns: List[str]) -> None:
        self._rows = rows
        self._columns = columns

    def rows(self) -> Iterator[ExecRow]:
        return iter(self._rows)

    def output_columns(self) -> List[str]:
        return list(self._columns)

    def describe(self) -> str:
        return f"WideTableRows({len(self._rows)})"


class GroundTruthOracle:
    """Recovers ground-truth result sets for DSG-generated queries."""

    def __init__(self, ndb: NormalizedDatabase) -> None:
        self.ndb = ndb

    # ------------------------------------------------------------------ bitmaps

    def join_bitmap(self, query: QuerySpec) -> Bitmap:
        """Combine per-table bitmaps along the join chain (Table 2 + Eq. 1)."""
        bitmap_index = self.ndb.bitmap
        bits = bitmap_index.bitmap(query.base.table).copy()
        for step in query.joins:
            table_bits = bitmap_index.bitmap(step.table.table)
            join_type = step.join_type
            if join_type in (JoinType.INNER, JoinType.SEMI, JoinType.CROSS):
                bits = bits & table_bits
            elif join_type is JoinType.ANTI:
                bits = bits & ~table_bits
            elif join_type is JoinType.LEFT_OUTER:
                continue
            elif join_type is JoinType.RIGHT_OUTER:
                bits = table_bits.copy()
            elif join_type is JoinType.FULL_OUTER:
                bits = bits | table_bits
            else:  # pragma: no cover - defensive
                raise GroundTruthError(f"unsupported join type {join_type}")
        return bits

    # ------------------------------------------------------------------- oracle

    def _wide_exec_rows(self, query: QuerySpec, row_ids: Sequence[int]) -> List[ExecRow]:
        alias_info: Dict[str, tuple] = {}
        for ref in query.table_refs:
            alias_info[ref.alias] = (ref.table, list(self.ndb.data_columns(ref.table)))
        rows: List[ExecRow] = []
        for row_id in row_ids:
            wide_row = self.ndb.wide.row(row_id)
            exec_row: ExecRow = {}
            for alias, (table, columns) in alias_info.items():
                # When the wide row does not map to a table (its bit is 0), the
                # engine sees that table's columns as the NULL padding of an
                # outer join -- mirror that here, otherwise the child's copy of
                # a corrupted key would leak into the parent alias.
                mapped = self.ndb.rowid_map.get(row_id, table) is not None
                for column in columns:
                    exec_row[f"{alias}.{column}"] = (
                        wide_row[column] if mapped else NULL
                    )
            rows.append(exec_row)
        return rows

    def compute(self, query: QuerySpec) -> GroundTruth:
        """Compute the ground truth of one generated query."""
        bits = self.join_bitmap(query)
        row_ids = bits.indices()
        exec_rows = self._wide_exec_rows(query, row_ids)
        columns = sorted({name for row in exec_rows for name in row}) if exec_rows else []
        operator: PhysicalOperator = _StaticRows(exec_rows, columns)
        if query.where is not None:
            operator = Filter(operator, query.where)
        operator = Project(
            operator,
            query.select,
            group_by=query.group_by,
            distinct=query.distinct,
        )
        names = operator.output_columns()
        result_rows = [tuple(row[name] for name in names) for row in operator.rows()]
        mode = (
            VerificationMode.SUBSET
            if any(step.join_type is JoinType.CROSS for step in query.joins)
            else VerificationMode.FULL_SET
        )
        return GroundTruth(ResultSet(names, result_rows), mode, row_ids)
