"""Functional dependency discovery (TANE-style partition refinement, paper §3.1).

The paper relies on existing FD discovery algorithms (TANE, HyFD) to find the
dependencies supported by the data; this module implements a level-wise search
with stripped-partition refinement, which is exactly TANE's core idea and is more
than fast enough for wide tables of a few thousand rows and ~10-20 columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.dsg.widetable import WideTable
from repro.sqlvalue.values import is_null


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``lhs -> rhs`` (rhs is a single attribute)."""

    lhs: Tuple[str, ...]
    rhs: str

    def render(self) -> str:
        """Human-readable form, e.g. ``goodsId -> goodsName``."""
        return f"{{{', '.join(self.lhs)}}} -> {self.rhs}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _partition(table: WideTable, columns: Tuple[str, ...]) -> FrozenSet[FrozenSet[int]]:
    """Equivalence classes of row ids sharing the same values on *columns*.

    NULLs are treated as distinct (each NULL row is its own class), matching the
    "FDs supported by the data" reading used by schema normalization.  Singleton
    classes are stripped, TANE style, because they can never violate an FD.
    """
    groups: Dict[Tuple, List[int]] = {}
    for row_id, row in enumerate(table.rows):
        values = []
        has_null = False
        for column in columns:
            value = row[column]
            if is_null(value):
                has_null = True
                break
            values.append((type(value).__name__, str(value)))
        if has_null:
            continue
        groups.setdefault(tuple(values), []).append(row_id)
    return frozenset(frozenset(ids) for ids in groups.values() if len(ids) > 1)


def _refines(lhs_partition: FrozenSet[FrozenSet[int]],
             combined_partition: FrozenSet[FrozenSet[int]]) -> bool:
    """An FD lhs -> rhs holds iff partition(lhs) == partition(lhs + rhs)."""
    return lhs_partition == combined_partition


def holds(table: WideTable, lhs: Sequence[str], rhs: str) -> bool:
    """Check whether ``lhs -> rhs`` holds in *table*."""
    lhs_tuple = tuple(lhs)
    return _refines(_partition(table, lhs_tuple), _partition(table, lhs_tuple + (rhs,)))


class FDDiscovery:
    """Level-wise discovery of minimal functional dependencies."""

    def __init__(self, table: WideTable, max_lhs_size: int = 2,
                 exclude_columns: Sequence[str] = ()) -> None:
        self.table = table
        self.max_lhs_size = max_lhs_size
        self.exclude = set(exclude_columns)
        self._partition_cache: Dict[Tuple[str, ...], FrozenSet[FrozenSet[int]]] = {}

    def _cached_partition(self, columns: Tuple[str, ...]) -> FrozenSet[FrozenSet[int]]:
        key = tuple(sorted(columns))
        if key not in self._partition_cache:
            self._partition_cache[key] = _partition(self.table, key)
        return self._partition_cache[key]

    def discover(self) -> List[FunctionalDependency]:
        """Return the minimal FDs with LHS size up to ``max_lhs_size``.

        An FD is reported only if no proper subset of its LHS already determines
        the RHS (minimality), which is what the normalizer needs.
        """
        columns = [c for c in self.table.column_names if c not in self.exclude]
        found: List[FunctionalDependency] = []
        determined: Dict[str, List[FrozenSet[str]]] = {c: [] for c in columns}
        for size in range(1, self.max_lhs_size + 1):
            for lhs in combinations(columns, size):
                lhs_set = frozenset(lhs)
                lhs_partition = self._cached_partition(lhs)
                for rhs in columns:
                    if rhs in lhs:
                        continue
                    if any(previous <= lhs_set for previous in determined[rhs]):
                        continue
                    combined = self._cached_partition(tuple(lhs) + (rhs,))
                    if _refines(lhs_partition, combined):
                        found.append(FunctionalDependency(tuple(lhs), rhs))
                        determined[rhs].append(lhs_set)
        return found


def discover_fds(table: WideTable, max_lhs_size: int = 2,
                 exclude_columns: Sequence[str] = ()) -> List[FunctionalDependency]:
    """Convenience wrapper around :class:`FDDiscovery`."""
    return FDDiscovery(table, max_lhs_size, exclude_columns).discover()


def transitive_closure(attribute: str, fds: Iterable[FunctionalDependency]) -> Set[str]:
    """All attributes functionally determined (transitively) by a single attribute.

    Used by the noise synchronizer: when a key value is corrupted, every column in
    the closure of that key must be NULLed in the affected wide rows (``Fd(col_k)``
    in the paper's update rules).
    """
    closure: Set[str] = {attribute}
    fd_list = list(fds)
    changed = True
    while changed:
        changed = False
        for fd in fd_list:
            if set(fd.lhs) <= closure and fd.rhs not in closure:
                closure.add(fd.rhs)
                changed = True
    closure.discard(attribute)
    return closure
