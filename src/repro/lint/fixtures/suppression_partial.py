# repro-lint: path=repro/core/fixture_sup.py
"""allow[DET001] must silence only DET001, not the DET002 on the line."""
import random


def emit():
    tags = {"x", "y"}
    return list(tags) or random.random()  # repro-lint: allow[DET001]
