# repro-lint: path=repro/core/qcache.py
"""Clean counterpart: content-addressed keys from canonical inputs only."""
import hashlib

MEMO = {}


def result_cache_key(query, params):
    pieces = [query.render(), repr(params)]
    pieces.extend(f"{k}={MEMO[k]}" for k in sorted(MEMO))
    return hashlib.sha256("|".join(pieces).encode()).hexdigest()


def dataset_fingerprint(tables):
    parts = [name for name in sorted(tables.keys())]
    return hashlib.sha256(",".join(parts).encode()).hexdigest()


def lookup(cache, key):
    return cache.get(key)
