# repro-lint: path=repro/fixture_conc001.py
"""Deliberately broken: guarded state touched without the lock."""
import threading

GUARDED_BY = {"Box": ("_lock", ("_items",))}


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        self._items.append(item)

    def drain(self):
        return self.drain_locked()

    def drain_locked(self):
        items = list(self._items)
        self._items = []
        return items
