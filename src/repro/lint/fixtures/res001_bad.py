# repro-lint: path=repro/fixture_res001.py
"""Deliberately broken: sockets constructed with no ownership story."""
import socket


def probe(host, port):
    sock = socket.create_connection((host, port))
    sock.sendall(b"ping")


def fire_and_forget():
    socket.socket()
