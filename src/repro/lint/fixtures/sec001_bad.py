# repro-lint: path=repro/fixture_sec001.py
"""Deliberately broken: unpickling and eval outside the codec."""
import pickle


def load_frame(blob):
    return pickle.loads(blob)


def evaluate(expression):
    return eval(expression)
