# repro-lint: path=repro/core/fixture_lint000.py
"""Clean counterpart: the allow matches a real finding, so it is used."""
import random


def jitter():
    return random.random()  # repro-lint: allow[DET001]
