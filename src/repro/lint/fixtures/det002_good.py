# repro-lint: path=repro/core/fixture_det002.py
"""Clean counterpart: sorted() at every order-escape point."""
NAMES = {"b", "a"}
ORDERED = sorted(NAMES)
JOINED = ",".join(sorted(NAMES))
SHOUTED = [name.upper() for name in sorted(NAMES)]


def emit():
    tags = {"x", "y"}
    for tag in sorted(tags):
        yield tag
