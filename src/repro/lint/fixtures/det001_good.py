# repro-lint: path=repro/core/fixture_det001.py
"""Clean counterpart: seeded, hash-free, monotonic."""
import hashlib
import random
import time


def jitter(rng):
    return rng.random()


def make_rng():
    return random.Random(17)


def salted(seed, name):
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return random.Random(seed + int.from_bytes(digest[:4], "big") % 1000)


def stamp():
    return time.monotonic()
