# repro-lint: path=repro/core/fixture_obs001.py
"""Deliberately broken: a heartbeat that dies without a trace."""


def tick(transport):
    try:
        transport.send(b"hb")
    except Exception:
        pass
