# repro-lint: path=repro/fixture_lint000.py
"""Deliberately broken: a suppression that suppresses nothing."""
VALUE = 1  # repro-lint: allow[DET001]
