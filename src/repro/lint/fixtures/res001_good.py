# repro-lint: path=repro/fixture_res001.py
"""Clean counterpart: with-block, finally-close, return-to-caller."""
import socket


def probe(host, port):
    with socket.create_connection((host, port)) as sock:
        sock.sendall(b"ping")


def ping_once(host, port):
    sock = socket.create_connection((host, port))
    try:
        sock.sendall(b"hello")
    finally:
        sock.close()


def open_for_caller(host, port):
    return socket.create_connection((host, port))
