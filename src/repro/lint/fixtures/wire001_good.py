# repro-lint: path=repro/fixture_wire/wire.py
"""Clean counterpart: codec and dataclass agree field-for-field."""
from dataclasses import dataclass


@dataclass
class Ping:
    seq: int
    payload: str


def encode_ping(ping):
    return {"seq": ping.seq, "payload": ping.payload}


def decode_ping(obj):
    return Ping(seq=obj["seq"], payload=obj.get("payload", ""))
