# repro-lint: path=repro/core/qcache.py
"""Deliberately broken: non-canonical inputs feeding cache keys."""
import hashlib

MEMO = {}


def result_cache_key(query, params):
    tag = id(query)
    salt = hash(params)
    pieces = [str(tag), str(salt)]
    pieces.extend(f"{k}={v}" for k, v in MEMO.items())
    return hashlib.sha256("|".join(pieces).encode()).hexdigest()


def dataset_fingerprint(tables):
    parts = [name for name in tables.keys()]
    return hashlib.sha256(",".join(parts).encode()).hexdigest()


def lookup(cache, key):
    # id()/hash() are banned everywhere in qcache.py, not just key builders.
    return cache.get(id(key))
