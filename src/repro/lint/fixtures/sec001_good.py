# repro-lint: path=repro/fixture_sec001.py
"""Clean counterpart: unpickling confined to PickleFrameCodec."""
import pickle


class PickleFrameCodec:
    def recv(self, blob):
        return pickle.loads(blob)
