# repro-lint: path=repro/core/fixture_det001.py
"""Deliberately broken: every DET001 class in one file."""
import random
import time


def jitter():
    return random.random()


def make_rng():
    return random.Random()


def salted(seed, name):
    return random.Random(seed + hash(name) % 1000)


def stamp():
    return time.time()
