# repro-lint: path=repro/fixture_wire/wire.py
"""Deliberately broken: the encoder drops a dataclass field."""
from dataclasses import dataclass


@dataclass
class Ping:
    seq: int
    payload: str


def encode_ping(ping):
    return {"seq": ping.seq}


def decode_ping(obj):
    return Ping(seq=obj["seq"], payload=obj.get("payload", ""))
