# repro-lint: path=repro/fixture_conc001.py
"""Clean counterpart: every guarded access holds the lock."""
import threading

GUARDED_BY = {"Box": ("_lock", ("_items",))}


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        with self._lock:
            self._items.append(item)

    def drain(self):
        with self._lock:
            return self.drain_locked()

    def drain_locked(self):
        items = list(self._items)
        self._items = []
        return items
