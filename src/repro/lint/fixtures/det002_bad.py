# repro-lint: path=repro/core/fixture_det002.py
"""Deliberately broken: set iteration order leaking into ordered output."""
NAMES = {"b", "a"}
ORDERED = list(NAMES)
JOINED = ",".join(NAMES)
SHOUTED = [name.upper() for name in NAMES]


def emit():
    tags = {"x", "y"}
    for tag in tags:
        yield tag
