# repro-lint: path=repro/core/fixture_obs001.py
"""Clean counterpart: contained, but counted."""
import sys


def tick(transport, metrics):
    try:
        transport.send(b"hb")
    except Exception as error:
        metrics.counter("heartbeat.errors").inc()
        print(f"heartbeat failed: {error}", file=sys.stderr)
