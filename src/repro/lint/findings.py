"""The unit of lint output: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One violation: where it is, which contract it breaks, how to fix it.

    ``path`` is the filesystem path the finding was produced from (what the
    user passed on the command line), not the logical module path rules use
    for scoping — error messages must point at real files.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable output order: path, then position, then rule."""
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """The one-line ``file:line:col: RULE message (fix: ...)`` form."""
        text = "{}:{}:{}: {} {}".format(
            self.path, self.line, self.col, self.rule_id, self.message
        )
        if self.hint:
            text += " (fix: {})".format(self.hint)
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form for ``--format json`` and CI artifacts."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }
