"""DET001/DET002: the bit-identical-replay contract, as rules.

The repo's core guarantee is serial == 1-worker == N-worker == TCP with
bit-identical verdicts and budgets.  Two things break it in practice:
ambient nondeterminism (unseeded RNGs, wall clocks, per-process string-hash
salt) sneaking into a deterministic module, and set iteration order leaking
into emitted output.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.context import ModuleContext, Project
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

#: ``random.<fn>()`` calls that consume the shared, ambiently seeded module
#: RNG.  Any of them inside the deterministic closure couples verdicts to
#: whatever else touched the module RNG first.
_AMBIENT_RNG = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "paretovariate",
        "weibullvariate",
        "lognormvariate",
        "vonmisesvariate",
        "seed",
    }
)

#: Wall-clock reads.  ``time.monotonic``/``perf_counter`` stay legal — they
#: feed telemetry, which by contract never feeds back into verdicts.
_WALL_CLOCK_TIME = frozenset({"time", "time_ns"})
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})

#: Modules whose ``__init__`` may default-construct ``random.Random()`` —
#: the sanctioned default-seed constructors the issue carves out.
_SANCTIONED_PREFIXES = ("repro/dsg/", "repro/kqe/")


def _contains_hash_call(expression: ast.AST) -> bool:
    for node in ast.walk(expression):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            return True
    return False


@register_rule
class UnseededRandomness(Rule):
    rule_id = "DET001"
    title = "ambient randomness or wall clock in a deterministic module"
    rationale = (
        "Modules reachable from core/, kqe/, dsg/, engine/ or plan/ are under "
        "the bit-identical replay contract.  random.random() and friends read "
        "the process-global RNG, random.Random() with no seed draws from the "
        "OS, hash(str) inside a seed expression varies with PYTHONHASHSEED "
        "across processes, and time.time()/datetime.now() differ per run — "
        "any of them makes serial, pooled and TCP campaigns diverge.  Use "
        "random.Random(<literal or derived seed>); derive per-name seeds "
        "with hashlib (stable across processes), never hash()."
    )

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        if module.logical not in project.deterministic_closure():
            return
        imported = module.imported_modules()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            finding = None
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base == "random" and "random" in imported:
                    finding = self._check_random(module, node, func.attr)
                elif base == "time" and "time" in imported:
                    if func.attr in _WALL_CLOCK_TIME:
                        finding = self._finding(
                            module,
                            node,
                            f"wall-clock read time.{func.attr}()",
                            "use time.monotonic()/perf_counter() for "
                            "durations; never let wall time reach a verdict",
                        )
            # datetime.datetime.now() / datetime.date.today()
            if (
                finding is None
                and func.attr in _WALL_CLOCK_DATETIME
                and "datetime" in imported
                and self._is_datetime_base(func.value)
            ):
                finding = self._finding(
                    module,
                    node,
                    f"wall-clock read datetime {func.attr}()",
                    "deterministic modules must not read calendar time",
                )
            if finding is not None:
                yield finding

    def _check_random(
        self, module: ModuleContext, node: ast.Call, attr: str
    ) -> Optional[Finding]:
        if attr == "Random":
            if not node.args and not node.keywords:
                if self._sanctioned_default(module, node):
                    return None
                return self._finding(
                    module,
                    node,
                    "random.Random() constructed without a seed",
                    "pass a literal or derived seed (repo convention: "
                    "small literal primes)",
                )
            if any(_contains_hash_call(arg) for arg in node.args):
                return self._finding(
                    module,
                    node,
                    "hash() inside a random.Random seed expression",
                    "hash(str) is salted per process (PYTHONHASHSEED); "
                    "derive the seed from hashlib.sha256 instead",
                )
            return None
        if attr in _AMBIENT_RNG:
            return self._finding(
                module,
                node,
                f"ambient module-level RNG call random.{attr}()",
                "route randomness through a seeded random.Random instance",
            )
        return None

    def _sanctioned_default(self, module: ModuleContext, node: ast.Call) -> bool:
        if not module.logical.startswith(_SANCTIONED_PREFIXES):
            return False
        function = module.enclosing_function(node)
        return function is not None and function.name == "__init__"

    @staticmethod
    def _is_datetime_base(value: ast.expr) -> bool:
        if isinstance(value, ast.Name):
            return value.id == "datetime"
        return (
            isinstance(value, ast.Attribute)
            and value.attr in ("datetime", "date")
            and isinstance(value.value, ast.Name)
            and value.value.id == "datetime"
        )

    def _finding(
        self, module: ModuleContext, node: ast.AST, message: str, hint: str
    ) -> Finding:
        line, col = module.finding_location(node)
        return Finding(
            rule_id=self.rule_id,
            path=module.path,
            line=line,
            col=col,
            message=message,
            hint=hint,
        )


@register_rule
class UnsortedSetIteration(Rule):
    rule_id = "DET002"
    title = "set iteration order leaking into ordered output"
    rationale = (
        "Sets iterate in salted-hash order, different per process.  Inside "
        "the deterministic subsystems, materializing a set into an ordered "
        "container — list(s), tuple(s), sep.join(s), a list comprehension "
        "or a yielding loop over s — bakes that order into emitted output, "
        "hashes or snapshots.  Wrap the set in sorted(...) first (the repo "
        "does this everywhere order can escape)."
    )

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        if not module.is_deterministic:
            return
        functions: List[Optional[ast.AST]] = [None]
        functions.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for function in functions:
            scope = function if function is not None else module.tree
            set_names = self._set_typed_names(scope)
            for finding in self._check_scope(module, scope, function, set_names):
                yield finding

    # ------------------------------------------------------- type inference

    def _is_set_expr(self, node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False

    def _set_typed_names(self, scope: ast.AST) -> Set[str]:
        """Names assigned a set-typed value anywhere in this scope (fixpoint)."""
        names: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if (
                        isinstance(target, ast.Name)
                        and target.id not in names
                        and self._is_set_expr(node.value, names)
                    ):
                        names.add(target.id)
                        changed = True
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if node.target.id not in names and self._is_set_annotation(
                        node.annotation
                    ):
                        names.add(node.target.id)
                        changed = True
        return names

    @staticmethod
    def _is_set_annotation(annotation: ast.expr) -> bool:
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        return isinstance(target, ast.Name) and target.id in (
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
        )

    # --------------------------------------------------------------- sinks

    def _check_scope(
        self,
        module: ModuleContext,
        scope: ast.AST,
        function: Optional[ast.AST],
        set_names: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(scope):
            # Nested functions get their own scope pass.
            if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if module.enclosing_function(node) is not function:
                continue
            ordered_sink = self._ordered_sink(node, set_names)
            if ordered_sink is None:
                continue
            if self._inside_sorted(module, node):
                continue
            line, col = module.finding_location(node)
            yield Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message=ordered_sink,
                hint="wrap the set in sorted(...) before it becomes ordered "
                "output",
            )

    def _ordered_sink(
        self, node: ast.AST, set_names: Set[str]
    ) -> Optional[str]:
        if isinstance(node, ast.Call) and len(node.args) == 1:
            argument = node.args[0]
            if isinstance(node.func, ast.Name) and node.func.id in (
                "list",
                "tuple",
            ):
                if self._is_set_expr(argument, set_names):
                    return (
                        f"{node.func.id}() over a set materializes "
                        "hash-salted iteration order"
                    )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and self._is_set_expr(argument, set_names)
            ):
                return "str.join over a set emits hash-salted order"
        if isinstance(node, ast.ListComp) and self._is_set_expr(
            node.generators[0].iter, set_names
        ):
            return "list comprehension over a set materializes hash-salted order"
        if isinstance(node, ast.For) and self._is_set_expr(
            node.iter, set_names
        ):
            if any(
                isinstance(child, (ast.Yield, ast.YieldFrom))
                for statement in node.body
                for child in ast.walk(statement)
            ):
                return "yielding loop over a set emits hash-salted order"
        return None

    @staticmethod
    def _inside_sorted(module: ModuleContext, node: ast.AST) -> bool:
        for ancestor in module.ancestors(node):
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id == "sorted"
            ):
                return True
        return False


#: The content-addressed cache module whose import closure DET003 covers.
_QCACHE_SEED = "repro/core/qcache.py"

#: Function-name fragments that mark a cache-key/fingerprint builder.
_KEY_MARKERS = ("key", "fingerprint", "digest")

#: Dict view methods whose iteration order is insertion order — canonical
#: only after sorted().
_DICT_VIEWS = frozenset({"items", "keys", "values"})


def _qcache_closure(project: Project) -> Set[str]:
    """Logical paths of qcache.py plus everything it (transitively) imports."""
    seed = project.by_logical.get(_QCACHE_SEED)
    if seed is None:
        return set()
    closure: Set[str] = set()
    frontier: List[ModuleContext] = [seed]
    while frontier:
        module = frontier.pop()
        if module.logical in closure:
            continue
        closure.add(module.logical)
        for dotted in module.imported_modules():
            imported = project.resolve(dotted)
            if imported is not None and imported.logical not in closure:
                frontier.append(imported)
    return closure


@register_rule
class NonCanonicalCacheKey(Rule):
    rule_id = "DET003"
    title = "cache key built from non-canonical inputs"
    rationale = (
        "Content-addressed cache keys must be pure functions of canonical "
        "content.  id() is a memory address, hash() is salted per process "
        "(PYTHONHASHSEED), and raw dict iteration bakes one construction "
        "path's insertion order into the key — any of them lets the same "
        "logical query fingerprint differently across runs or processes, "
        "which silently breaks the cache-on == cache-off verdict contract.  "
        "Inside qcache.py and its import closure, key/fingerprint/digest "
        "builders must feed hashlib canonical text only, and wrap any dict "
        "view in sorted(...) before iterating."
    )

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        closure = _qcache_closure(project)
        if module.logical not in closure:
            return
        in_qcache = module.logical == _QCACHE_SEED
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            keyish = self._in_key_builder(module, node)
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ("id", "hash")
                and (in_qcache or keyish)
            ):
                line, col = module.finding_location(node)
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.path,
                    line=line,
                    col=col,
                    message=f"{node.func.id}() feeding cache-key "
                    "construction is identity/salt-dependent",
                    hint="address content, not objects: hashlib over "
                    "canonical rendered text",
                )
            elif (
                keyish
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DICT_VIEWS
                and not node.args
                and not node.keywords
                and not UnsortedSetIteration._inside_sorted(module, node)
            ):
                line, col = module.finding_location(node)
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.path,
                    line=line,
                    col=col,
                    message=f".{node.func.attr}() iterated unsorted inside "
                    "a cache-key builder",
                    hint="wrap the view in sorted(...) so the key is "
                    "independent of insertion order",
                )

    @staticmethod
    def _in_key_builder(module: ModuleContext, node: ast.AST) -> bool:
        function = module.enclosing_function(node)
        if function is None:
            return False
        name = function.name.lower()
        return any(marker in name for marker in _KEY_MARKERS)
