"""SEC001: dynamic deserialization/execution outside the sanctioned codec.

``pickle.loads`` on bytes from a socket is remote code execution; protocol
v2 exists precisely to confine it.  The one legal home is
``PickleFrameCodec`` (the legacy v1 codec, HELLO-gated and documented as
trusted-network-only).  ``eval``/``exec`` have no legal home at all.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext, Project
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

#: The only class allowed to unpickle.
_SANCTIONED_CLASS = "PickleFrameCodec"


@register_rule
class UnsafeDeserialization(Rule):
    rule_id = "SEC001"
    title = "pickle.loads / eval / exec outside PickleFrameCodec"
    rationale = (
        "Unpickling attacker-supplied bytes executes arbitrary code; that is "
        "why the wire protocol moved to HMAC-authenticated JSON frames.  The "
        "legacy v1 codec class PickleFrameCodec is the single audited "
        "exception.  eval/exec of strings is never acceptable in this "
        "codebase — predicates go through the typed expression AST."
    )

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            message = None
            if isinstance(func, ast.Name) and func.id in ("eval", "exec"):
                message = f"call to builtin {func.id}()"
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in ("loads", "load")
                and isinstance(func.value, ast.Name)
                and func.value.id == "pickle"
            ):
                message = f"pickle.{func.attr}() outside {_SANCTIONED_CLASS}"
            if message is None:
                continue
            enclosing = module.enclosing_class(node)
            if enclosing is not None and enclosing.name == _SANCTIONED_CLASS:
                continue
            line, col = module.finding_location(node)
            yield Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message=message,
                hint="route deserialization through PickleFrameCodec (v1, "
                "trusted networks) or JsonFrameCodec (v2)",
            )
