"""RES001: closeable objects constructed without an ownership story.

The repo's long campaigns hold sockets, SQLite/DuckDB connections and
process pools.  A ``DifferentialTester(...)`` constructed and dropped leaks
all three.  The rule tracks the constructors of every ``.close()``-bearing
type in the tree and accepts any recognizable ownership pattern: ``with``,
close-in-finally, returning/yielding the object, storing it on ``self``,
or passing it to another call (ownership transfer).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import ModuleContext, Project
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

#: Constructors (or factories) whose result bears ``.close()``.
_CLOSEABLE_CONSTRUCTORS = frozenset(
    {
        "DifferentialTester",
        "ExecutionPipeline",
        "RemoteSyncTransport",
        "ScriptedClient",
        "FaultyProxy",
        "SQLiteBackend",
        "DuckDBBackend",
        "backend_from_name",
    }
)

#: ``socket.<attr>(...)`` factories returning closeables.
_SOCKET_FACTORIES = frozenset({"socket", "create_connection"})


def _constructor_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name) and func.id in _CLOSEABLE_CONSTRUCTORS:
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _SOCKET_FACTORIES
        and isinstance(func.value, ast.Name)
        and func.value.id == "socket"
    ):
        return "socket." + func.attr
    return None


@register_rule
class LeakedCloseable(Rule):
    rule_id = "RES001"
    title = "closeable constructed without with/finally/ownership transfer"
    rationale = (
        "Backends, transports, pipelines and sockets all hold OS resources; "
        "campaign code runs for hours, so a single leaked constructor "
        "becomes thousands of leaked handles.  Every construction must show "
        "its ownership: a `with` block, a close() in finally/except, being "
        "returned/yielded to a caller, being stored on an owner object, or "
        "being handed to another call."
    )

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _constructor_name(node)
            if name is None:
                continue
            if self._is_owned(module, node):
                continue
            line, col = module.finding_location(node)
            yield Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message=f"{name}(...) constructed without a visible owner",
                hint="use `with`, close it in a finally block, store it on "
                "an owner, or return it to the caller",
            )

    def _is_owned(self, module: ModuleContext, call: ast.Call) -> bool:
        parent = module.parent(call)
        previous: ast.AST = call
        # Walk out of wrapping expressions (conditionals, casts, tuples).
        while isinstance(
            parent, (ast.IfExp, ast.BoolOp, ast.Tuple, ast.Starred)
        ):
            previous = parent
            parent = module.parent(parent)
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(parent, ast.Call) and previous is not parent.func:
            return True  # passed straight into another call
        if isinstance(parent, ast.keyword):
            return True
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            if all(isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets):
                return True  # stored on an owner object
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if names:
                scope = module.enclosing_function(call) or module.tree
                return all(
                    self._name_is_owned(scope, name) for name in names
                )
        return False

    def _name_is_owned(self, scope: ast.AST, name: str) -> bool:
        """Does *scope* visibly take responsibility for local *name*?"""
        for node in ast.walk(scope):
            if isinstance(node, ast.withitem):
                if _expr_is_name(node.context_expr, name):
                    return True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and _mentions_name(node.value, name):
                    return True
            elif isinstance(node, ast.Try):
                for cleanup in list(node.finalbody) + [
                    stmt for handler in node.handlers for stmt in handler.body
                ]:
                    if _contains_close_of(cleanup, name):
                        return True
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if (
                    value is not None
                    and _mentions_name(value, name)
                    and any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in targets
                    )
                ):
                    return True  # re-homed onto an owner object
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) and _expr_is_name(
                    node.func.value, name
                ):
                    continue  # a method call on the object is not a transfer
                for argument in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    if _mentions_name(argument, name):
                        return True  # handed to another call
        return False


def _expr_is_name(expr: ast.AST, name: str) -> bool:
    return isinstance(expr, ast.Name) and expr.id == name


def _mentions_name(expr: ast.AST, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name
        for node in ast.walk(expr)
    )


def _contains_close_of(statement: ast.stmt, name: str) -> bool:
    for node in ast.walk(statement):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("close", "stop", "shutdown")
            and _expr_is_name(node.func.value, name)
        ):
            return True
        # `closer = getattr(x, "close", None)` style indirect cleanup.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and node.args
            and _expr_is_name(node.args[0], name)
        ):
            return True
    return False
