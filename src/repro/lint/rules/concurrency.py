"""CONC001: lock discipline for attributes declared shared via GUARDED_BY.

A module that owns a multi-threaded class declares its discipline once::

    GUARDED_BY = {"MetricsRegistry": ("_lock", ("_counters", "_gauges"))}

meaning: outside ``__init__``, ``self._counters`` may only be touched
lexically inside ``with self._lock:`` or inside a method whose name ends in
``_locked`` (the repo-wide "caller holds the lock" suffix convention).  The
rule also seeds the map for the three classes whose races have actually
bitten: MetricsRegistry, ExecutionPipeline and IndexServer.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.lint.context import ModuleContext, Project
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

#: class name -> (lock attribute, guarded attributes).
GuardMap = Dict[str, Tuple[str, Tuple[str, ...]]]

#: Built-in discipline for the known multi-threaded classes.  A module-level
#: ``GUARDED_BY`` dict in the linted file extends/overrides these entries.
_SEED_GUARDS: Dict[str, GuardMap] = {
    "repro/obs/registry.py": {
        "MetricsRegistry": (
            "_lock",
            ("_counters", "_gauges", "_histograms"),
        ),
    },
    "repro/core/execpipe.py": {
        "ExecutionPipeline": (
            "_lock",
            ("_target_pool", "_reference_pool"),
        ),
    },
    "repro/distributed/server.py": {
        "IndexServer": (
            "_cond",
            (
                "reports",
                "expected",
                "frames_rejected",
                "coordinator",
                "_shards",
                "_assignable",
                "_registered",
                "_evicted",
                "_shard_activity",
                "_round_batches",
                "_round_broadcasts",
                "_round_pending_fetch",
                "_round_opened",
                "_completed_hours",
                "_rounds_completed",
                "_telemetry",
                "_failure",
                "_last_activity",
                "_stopped",
            ),
        ),
    },
}


def _declared_guards(module: ModuleContext) -> GuardMap:
    """Parse a module-level ``GUARDED_BY = {...}`` literal, if present."""
    guards: GuardMap = {}
    for statement in module.tree.body:
        if not isinstance(statement, ast.Assign) or len(statement.targets) != 1:
            continue
        target = statement.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "GUARDED_BY"):
            continue
        if not isinstance(statement.value, ast.Dict):
            continue
        for key, value in zip(statement.value.keys, statement.value.values):
            class_name = _constant_str(key)
            if class_name is None:
                continue
            if not isinstance(value, (ast.Tuple, ast.List)):
                continue
            if len(value.elts) != 2:
                continue
            lock = _constant_str(value.elts[0])
            attrs_node = value.elts[1]
            if lock is None or not isinstance(attrs_node, (ast.Tuple, ast.List)):
                continue
            attrs = tuple(
                name
                for name in (_constant_str(elt) for elt in attrs_node.elts)
                if name is not None
            )
            guards[class_name] = (lock, attrs)
    return guards


def _constant_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register_rule
class LockDiscipline(Rule):
    rule_id = "CONC001"
    title = "guarded attribute accessed outside its lock"
    rationale = (
        "Shared mutable state declared in a GUARDED_BY map must only be "
        "touched in __init__, lexically inside `with self.<lock>:`, or in a "
        "method whose name ends in _locked (the repo convention for 'caller "
        "holds the lock').  Unlocked reads of pool handles, report maps or "
        "round state are exactly the races the fault-injection harness "
        "exists to catch — catch them at lint time instead."
    )

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        guards: GuardMap = dict(_SEED_GUARDS.get(module.logical, {}))
        guards.update(_declared_guards(module))
        if not guards:
            return
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if class_node.name not in guards:
                continue
            lock, attrs = guards[class_node.name]
            attr_set = frozenset(attrs)
            for node in ast.walk(class_node):
                finding = self._check_node(module, node, lock, attr_set)
                if finding is not None:
                    yield finding

    def _check_node(
        self,
        module: ModuleContext,
        node: ast.AST,
        lock: str,
        attrs: frozenset,
    ) -> Optional[Finding]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in attrs
        ):
            if self._in_guarded_context(module, node, lock):
                return None
            line, col = module.finding_location(node)
            return Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message=(
                    f"guarded attribute 'self.{node.attr}' accessed outside "
                    f"'with self.{lock}:'"
                ),
                hint="take the lock, or move the access into a *_locked "
                "method whose callers hold it",
            )
        # Calling a *_locked helper without holding the lock is the same bug
        # one level up.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr.endswith("_locked")
        ):
            if self._in_guarded_context(module, node, lock):
                return None
            line, col = module.finding_location(node)
            return Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message=(
                    f"'self.{node.func.attr}()' called without holding "
                    f"'self.{lock}'"
                ),
                hint="_locked methods document a held-lock precondition; "
                "wrap the call in `with self.{}:`".format(lock),
            )
        return None

    def _in_guarded_context(
        self, module: ModuleContext, node: ast.AST, lock: str
    ) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Any enclosing function counts: a closure nested inside a
                # *_locked method inherits the held-lock guarantee.
                if ancestor.name == "__init__" or ancestor.name.endswith(
                    "_locked"
                ):
                    return True
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and expr.attr == lock
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                    ):
                        return True
            if isinstance(ancestor, ast.ClassDef):
                break
        return False
