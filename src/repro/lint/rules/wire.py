"""WIRE001: encode/decode field coverage for wire-layer dataclasses.

Every ``encode_X``/``decode_X`` pair in a ``wire.py`` module round-trips a
dataclass over the protocol.  A field added to the dataclass but not to the
codec silently truncates on the wire — the receiver reconstructs the object
with a default and campaigns diverge between local and TCP runs.  The rule
cross-checks three field sets per pair: the dataclass definition, the
encoder's emitted keys, and the decoder's constructor keywords.
"""

from __future__ import annotations

import ast
import posixpath
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import ModuleContext, Project
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule


def _module_str_tuples(module: ModuleContext) -> Dict[str, List[str]]:
    """Module-level ``NAME = ("a", "b", ...)`` string-tuple constants."""
    constants: Dict[str, List[str]] = {}
    for statement in module.tree.body:
        if not isinstance(statement, ast.Assign) or len(statement.targets) != 1:
            continue
        target = statement.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if not isinstance(statement.value, (ast.Tuple, ast.List)):
            continue
        values = []
        for elt in statement.value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                values.append(elt.value)
            else:
                break
        else:
            if values:
                constants[target.id] = values
    return constants


@register_rule
class WireFieldCoverage(Rule):
    rule_id = "WIRE001"
    title = "wire codec missing dataclass fields"
    rationale = (
        "encode_X and decode_X in distributed/wire.py must cover every "
        "field of the dataclass they carry; a missing key truncates state "
        "on the wire and makes TCP campaigns diverge bit-for-bit from local "
        "ones — the exact bug class the determinism harness exists to "
        "catch, except invisible until a distributed run."
    )

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        if posixpath.basename(module.logical) != "wire.py":
            return
        tuples = _module_str_tuples(module)
        encoders: Dict[str, ast.FunctionDef] = {}
        decoders: Dict[str, ast.FunctionDef] = {}
        for statement in module.tree.body:
            if not isinstance(statement, ast.FunctionDef):
                continue
            if statement.name.startswith("encode_"):
                encoders[statement.name[len("encode_"):]] = statement
            elif statement.name.startswith("decode_"):
                decoders[statement.name[len("decode_"):]] = statement
        all_dataclasses = project.dataclass_fields()
        for key in sorted(set(encoders) & set(decoders)):
            encoder, decoder = encoders[key], decoders[key]
            constructed = self._constructed_dataclass(decoder, all_dataclasses)
            if constructed is None:
                continue  # decoder builds a non-dataclass value; out of scope
            class_name, decoder_fields = constructed
            declared = set(all_dataclasses[class_name])
            encoder_fields = self._encoded_keys(encoder, tuples)
            for finding in self._compare(
                module, encoder, f"encode_{key}", declared, encoder_fields,
                class_name,
            ):
                yield finding
            for finding in self._compare(
                module, decoder, f"decode_{key}", declared, decoder_fields,
                class_name,
            ):
                yield finding

    # ----------------------------------------------------------- extraction

    def _constructed_dataclass(
        self,
        decoder: ast.FunctionDef,
        all_dataclasses: Dict[str, List[str]],
    ) -> Optional[Tuple[str, Optional[Set[str]]]]:
        """(class name, keyword field set) for the decoder's constructor call.

        The field set is None when the call uses ``**name`` that cannot be
        resolved to a dict of known keys — coverage is then checked for the
        encoder only.
        """
        for node in ast.walk(decoder):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            if not isinstance(call.func, ast.Name):
                continue
            class_name = call.func.id
            if class_name not in all_dataclasses:
                continue
            fields: Set[str] = set()
            resolved = True
            for keyword in call.keywords:
                if keyword.arg is not None:
                    fields.add(keyword.arg)
                    continue
                expanded = self._resolve_star_dict(decoder, keyword.value)
                if expanded is None:
                    resolved = False
                else:
                    fields.update(expanded)
            return (class_name, fields if resolved else None)
        return None

    def _resolve_star_dict(
        self, decoder: ast.FunctionDef, value: ast.expr
    ) -> Optional[Set[str]]:
        """Keys of a ``**fields`` expansion when fields is a local dict."""
        if not isinstance(value, ast.Name):
            return None
        for node in ast.walk(decoder):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id == value.id):
                continue
            keys = self._dict_keys(node.value)
            if keys is not None:
                return keys
        return None

    def _dict_keys(self, value: ast.expr) -> Optional[Set[str]]:
        if isinstance(value, ast.Dict):
            keys: Set[str] = set()
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
                else:
                    return None
            return keys
        if isinstance(value, ast.DictComp):
            iterator = value.generators[0].iter
            if isinstance(iterator, ast.Name):
                # Resolved against module constants by the caller via
                # _encoded_keys-style lookup; here the comp key must be the
                # loop variable itself.
                return {"__needs_tuple__", iterator.id}
        return None

    def _encoded_keys(
        self, encoder: ast.FunctionDef, tuples: Dict[str, List[str]]
    ) -> Optional[Set[str]]:
        for node in ast.walk(encoder):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Dict):
                keys: Set[str] = set()
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys.add(key.value)
                    else:
                        return None
                return keys
            if isinstance(value, ast.DictComp):
                iterator = value.generators[0].iter
                if isinstance(iterator, ast.Name) and iterator.id in tuples:
                    return set(tuples[iterator.id])
                return None
        return None

    # ----------------------------------------------------------- comparison

    def _compare(
        self,
        module: ModuleContext,
        function: ast.FunctionDef,
        label: str,
        declared: Set[str],
        covered: Optional[Set[str]],
        class_name: str,
    ) -> Iterator[Finding]:
        if covered is None:
            return
        if "__needs_tuple__" in covered:
            # Unresolvable dict comprehension: resolve via module tuples.
            tuple_name = next(
                name for name in covered if name != "__needs_tuple__"
            )
            tuples = _module_str_tuples(module)
            if tuple_name not in tuples:
                return
            covered = set(tuples[tuple_name])
        missing = sorted(declared - covered)
        extra = sorted(covered - declared)
        line, col = module.finding_location(function)
        if missing:
            yield Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message=(
                    f"{label} omits {class_name} field(s): "
                    + ", ".join(missing)
                ),
                hint="add the field(s) to the codec so TCP round-trips "
                "carry full state",
            )
        if extra:
            yield Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message=(
                    f"{label} references unknown {class_name} field(s): "
                    + ", ".join(extra)
                ),
                hint="the dataclass has no such field; remove or rename "
                "the key",
            )
