"""OBS001: swallowed exceptions in worker and campaign paths.

A worker that dies silently looks exactly like a slow worker; PR 5's
fault-injection postmortems traced every confusing hang to a broad except
whose body was ``pass``.  Broad handlers are allowed to *contain* failure,
but they must leave a trace: re-raise, increment an error counter, log, or
do literally anything observable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext, Project
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

#: Subsystems where silent failure hides worker/campaign death.
_SCOPED_PREFIXES = ("repro/core/", "repro/distributed/", "repro/obs/")

_BROAD_NAMES = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True  # bare except
    if isinstance(kind, ast.Name):
        return kind.id in _BROAD_NAMES
    if isinstance(kind, ast.Tuple):
        return any(
            isinstance(elt, ast.Name) and elt.id in _BROAD_NAMES
            for elt in kind.elts
        )
    return False


def _is_trivial(statement: ast.stmt) -> bool:
    if isinstance(statement, (ast.Pass, ast.Continue)):
        return True
    if isinstance(statement, ast.Return):
        return statement.value is None
    if isinstance(statement, ast.Expr) and isinstance(
        statement.value, ast.Constant
    ):
        return True  # docstring / ellipsis
    return False


@register_rule
class SwallowedException(Rule):
    rule_id = "OBS001"
    title = "broad except swallows the error without a trace"
    rationale = (
        "In core/, distributed/ and obs/ a bare `except:` or "
        "`except Exception:` whose body is only pass/return/continue makes "
        "worker death indistinguishable from worker slowness.  Narrow "
        "catches (OSError on a best-effort close) are fine; broad ones must "
        "re-raise, bump an obs counter, or log before moving on."
    )

    def check_module(
        self, module: ModuleContext, project: Project
    ) -> Iterator[Finding]:
        if not module.logical.startswith(_SCOPED_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if not all(_is_trivial(statement) for statement in node.body):
                continue
            line, col = module.finding_location(node)
            yield Finding(
                rule_id=self.rule_id,
                path=module.path,
                line=line,
                col=col,
                message="broad except handler swallows the exception "
                "silently",
                hint="re-raise, increment an obs error counter, or write a "
                "line to stderr before continuing",
            )
