"""LINT000: the suite checking itself — unused suppressions.

The finding is emitted by the suppression engine, not by ``check_module``;
this registration exists so ``--explain LINT000`` and ``--list-rules`` can
document the contract like any other rule.
"""

from __future__ import annotations

from repro.lint.registry import Rule, register_rule


@register_rule
class UnusedSuppression(Rule):
    rule_id = "LINT000"
    title = "unused suppression directive"
    rationale = (
        "Every `# repro-lint: allow[RULE]` must suppress an actual finding "
        "on its line.  When the excused code is later fixed, the stale "
        "allow would otherwise linger and silently excuse the next "
        "regression on that line — so an allow that matches nothing is "
        "itself a finding."
    )
