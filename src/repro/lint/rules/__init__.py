"""The rule pack.  Importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    concurrency,
    determinism,
    meta,
    observability,
    resources,
    security,
    wire,
)
