"""Inline suppressions: ``# repro-lint: allow[RULE]`` and file directives.

A suppression silences exactly one rule on exactly one line — broad opt-outs
would quietly rot the contracts the suite exists to protect.  Every allow
must actually suppress something: an unused allow is itself reported (as
``LINT000``), so stale suppressions cannot linger after the code they
excused is fixed.

``# repro-lint: path=repro/...`` overrides a file's logical path for rule
scoping; fixture files use it to place themselves inside the subsystems the
rules are scoped to without living there.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.lint.findings import Finding

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*(?P<body>.+?)\s*$")
_ALLOW = re.compile(r"allow\[(?P<ids>[A-Za-z0-9_,\s]+)\]")
_PATH = re.compile(r"path=(?P<path>\S+)")
#: Real rule ids look like DET001/LINT000; prose examples ("allow[RULE]")
#: in docstrings must not parse as live suppressions.
_RULE_ID = re.compile(r"[A-Z]{2,}[0-9]{3}")

#: Pseudo-rule id used to report unused suppressions.
UNUSED_SUPPRESSION_RULE = "LINT000"


@dataclass
class Suppression:
    """One ``allow[RULE]`` on one line, tracked for use."""

    line: int
    rule_id: str
    used: bool = False


def parse_path_override(lines: List[str]) -> Optional[str]:
    """The ``path=`` directive's value, if the file declares one.

    Only standalone comment lines count — a docstring quoting the directive
    syntax must not re-home the module that documents it.
    """
    for line in lines:
        if not line.lstrip().startswith("#"):
            continue
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        path_match = _PATH.search(match.group("body"))
        if path_match is not None:
            return path_match.group("path")
    return None


def parse_suppressions(lines: List[str]) -> List[Suppression]:
    """Every ``allow[...]`` in the file, one entry per (line, rule)."""
    found: List[Suppression] = []
    for number, line in enumerate(lines, start=1):
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        allow_match = _ALLOW.search(match.group("body"))
        if allow_match is None:
            continue
        for rule_id in allow_match.group("ids").split(","):
            rule_id = rule_id.strip()
            if rule_id and _RULE_ID.fullmatch(rule_id):
                found.append(Suppression(line=number, rule_id=rule_id))
    return found


def apply_suppressions(
    path: str, suppressions: List[Suppression], findings: List[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    """Filter *findings* through *suppressions* for one file.

    Returns ``(kept, unused)``: findings that survived, and one LINT000
    finding per allow that matched nothing.
    """
    kept: List[Finding] = []
    for finding in findings:
        suppressed = False
        for suppression in suppressions:
            if (
                suppression.line == finding.line
                and suppression.rule_id == finding.rule_id
            ):
                suppression.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    unused = [
        Finding(
            rule_id=UNUSED_SUPPRESSION_RULE,
            path=path,
            line=suppression.line,
            col=0,
            message="unused suppression allow[{}]".format(suppression.rule_id),
            hint="the allow matches no finding on this line; delete it",
        )
        for suppression in suppressions
        if not suppression.used
    ]
    return kept, unused
