"""Parsed-module and whole-tree context shared by every rule.

:class:`ModuleContext` wraps one parsed file with the bookkeeping rules need
constantly: a child->parent map (``ast`` has none), enclosing-scope lookup,
and the module's *logical* path — its path from the ``repro`` package root,
which is what rule scoping is defined over.  Fixture files override their
logical path with a ``# repro-lint: path=repro/...`` directive so a file in
``lint/fixtures/`` can exercise a rule scoped to, say, ``repro/core/``.

:class:`Project` holds every analyzed module and answers the cross-module
questions: which modules are reachable (via imports) from the deterministic
subsystems, and where a dataclass by some name is defined.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

#: Subsystems under the bit-identical determinism contract.  Anything they
#: import (transitively) inherits the contract for DET001 purposes.
DETERMINISTIC_PREFIXES: Tuple[str, ...] = (
    "repro/core/",
    "repro/kqe/",
    "repro/dsg/",
    "repro/engine/",
    "repro/plan/",
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class ModuleContext:
    """One parsed source file plus the navigation helpers rules share."""

    def __init__(self, path: str, logical: str, source: str) -> None:
        self.path = path
        self.logical = logical
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._imported_modules: Optional[Set[str]] = None

    @property
    def is_deterministic(self) -> bool:
        """True when this module itself lives under a deterministic prefix."""
        return self.logical.startswith(DETERMINISTIC_PREFIXES)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain from *node*'s parent up to the module node."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[FunctionNode]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def imported_modules(self) -> Set[str]:
        """Dotted names of every module imported anywhere in the file.

        Function-level deferred imports count too — the worker pool imports
        the TCP stack inside functions, and reachability must see through
        that, so the collector walks the whole tree rather than just the
        module's top level.
        """
        if self._imported_modules is None:
            found: Set[str] = set()
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        found.add(alias.name)
                elif isinstance(node, ast.ImportFrom) and node.level == 0:
                    base = node.module or ""
                    if base:
                        found.add(base)
                        for alias in node.names:
                            # `from repro.a import b` may name a submodule;
                            # Project.resolve() decides which it was.
                            found.add(base + "." + alias.name)
            self._imported_modules = found
        return self._imported_modules

    def finding_location(self, node: ast.AST) -> Tuple[int, int]:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return (int(line), int(col))


class Project:
    """Every analyzed module, plus lazily computed cross-module views."""

    def __init__(self, modules: List[ModuleContext]) -> None:
        self.modules = modules
        self.by_logical: Dict[str, ModuleContext] = {
            module.logical: module for module in modules
        }
        self._deterministic_closure: Optional[Set[str]] = None
        self._dataclass_fields: Optional[Dict[str, List[str]]] = None

    def resolve(self, dotted: str) -> Optional[ModuleContext]:
        """Map a dotted import name to an analyzed module, if it is one."""
        if not dotted.startswith("repro"):
            return None
        base = dotted.replace(".", "/")
        for candidate in (base + ".py", base + "/__init__.py"):
            module = self.by_logical.get(candidate)
            if module is not None:
                return module
        return None

    def deterministic_closure(self) -> Set[str]:
        """Logical paths of modules the determinism contract covers.

        Seeded with everything under :data:`DETERMINISTIC_PREFIXES`, then
        closed over the import graph: a helper the engine calls is as able
        to break bit-identical replay as the engine itself.
        """
        if self._deterministic_closure is None:
            closure: Set[str] = set()
            frontier: List[ModuleContext] = [
                module for module in self.modules if module.is_deterministic
            ]
            while frontier:
                module = frontier.pop()
                if module.logical in closure:
                    continue
                closure.add(module.logical)
                for dotted in module.imported_modules():
                    imported = self.resolve(dotted)
                    if imported is not None and imported.logical not in closure:
                        frontier.append(imported)
            self._deterministic_closure = closure
        return self._deterministic_closure

    def dataclass_fields(self) -> Dict[str, List[str]]:
        """Dataclass name -> ordered field names, across the whole tree.

        Names are assumed unique tree-wide (true for the wire-layer types
        WIRE001 cares about); collisions keep the first definition seen in
        stable module order.
        """
        if self._dataclass_fields is None:
            fields: Dict[str, List[str]] = {}
            for module in sorted(self.modules, key=lambda m: m.logical):
                for node in ast.walk(module.tree):
                    if not isinstance(node, ast.ClassDef):
                        continue
                    if not _has_dataclass_decorator(node):
                        continue
                    if node.name in fields:
                        continue
                    fields[node.name] = [
                        statement.target.id
                        for statement in node.body
                        if isinstance(statement, ast.AnnAssign)
                        and isinstance(statement.target, ast.Name)
                        and not _is_classvar(statement)
                    ]
            self._dataclass_fields = fields
        return self._dataclass_fields


def _has_dataclass_decorator(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _is_classvar(statement: ast.AnnAssign) -> bool:
    annotation = statement.annotation
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "ClassVar"
    return isinstance(annotation, ast.Name) and annotation.id == "ClassVar"
