"""``python -m repro.lint`` — run the contract linters from the shell.

Exit codes: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lint.engine import run_lint
from repro.lint.registry import LintConfigError, registered_rules, rule_by_id

_FIXTURES_DIR = os.path.join(os.path.dirname(__file__), "fixtures")


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _explain(rule_id: str) -> int:
    rule = rule_by_id(rule_id)  # raises LintConfigError on unknown ids
    print(f"{rule.rule_id}: {rule.title}")
    print()
    print(rule.rationale)
    for flavor, heading in (("bad", "Bad example"), ("good", "Good example")):
        fixture = os.path.join(
            _FIXTURES_DIR, f"{rule.rule_id.lower()}_{flavor}.py"
        )
        if not os.path.isfile(fixture):
            continue
        print()
        print(f"{heading} ({os.path.relpath(fixture)}):")
        with open(fixture, "r", encoding="utf-8") as handle:
            for line in handle.read().splitlines():
                print("    " + line)
    return 0


def _list_rules() -> int:
    for rule in registered_rules():
        print(f"{rule.rule_id}  {rule.title}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis for the repo's determinism, "
        "concurrency and wire-safety contracts.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--explain",
        metavar="RULEID",
        help="print a rule's contract, rationale and fixture examples",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    options = parser.parse_args(argv)

    try:
        if options.explain:
            return _explain(options.explain)
        if options.list_rules:
            return _list_rules()
        if not options.paths:
            parser.error("no paths given (try: python -m repro.lint src)")
        findings = run_lint(
            options.paths,
            select=_split_ids(options.select),
            ignore=_split_ids(options.ignore),
        )
    except LintConfigError as error:
        print(f"repro.lint: {error}", file=sys.stderr)
        return 2

    if options.format == "json":
        print(
            json.dumps(
                {
                    "findings": [finding.to_dict() for finding in findings],
                    "count": len(findings),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"repro.lint: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
