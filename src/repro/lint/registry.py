"""Rule registry, mirroring the backend registry idiom.

Rules self-register at import time via the :func:`register_rule` class
decorator, exactly like engine adapters do with ``register_backend`` — the
engine then discovers them through :func:`registered_rules` without a central
hard-coded list, so adding a rule is one new module under ``repro/lint/rules``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type, TYPE_CHECKING

from repro.lint.findings import Finding

if TYPE_CHECKING:
    from repro.lint.context import ModuleContext, Project


class LintConfigError(Exception):
    """Bad rule registration or CLI rule selection."""


class Rule:
    """One checkable contract.

    Subclasses set the class attributes and implement :meth:`check_module`;
    rules that need the whole tree (import graphs, cross-module dataclass
    lookups) receive it as ``project`` on every call and may cache on it.
    """

    #: Stable identifier, e.g. ``"DET001"`` — what suppressions name.
    rule_id: str = ""
    #: One-line summary shown in listings.
    title: str = ""
    #: The invariant and its rationale, shown by ``--explain``.
    rationale: str = ""

    def check_module(
        self, module: "ModuleContext", project: "Project"
    ) -> Iterator[Finding]:
        """Yield findings for one module; called once per analyzed file."""
        return iter(())


_RULES: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule under its id."""
    rule = cls()
    if not rule.rule_id:
        raise LintConfigError(
            "rule {} has no rule_id".format(cls.__name__)
        )
    if rule.rule_id in _RULES:
        raise LintConfigError(
            "duplicate rule id {!r}".format(rule.rule_id)
        )
    _RULES[rule.rule_id] = rule
    return cls


def registered_rules() -> List[Rule]:
    """All registered rules in stable (id-sorted) order."""
    _ensure_rules_loaded()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rule_by_id(rule_id: str) -> Rule:
    """Look up one rule; raises :class:`LintConfigError` for unknown ids."""
    _ensure_rules_loaded()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise LintConfigError(
            "unknown rule {!r}; known: {}".format(
                rule_id, ", ".join(sorted(_RULES))
            )
        ) from None


def _ensure_rules_loaded() -> None:
    # Importing the rules package triggers every @register_rule decorator;
    # deferred so `repro.lint.registry` itself stays import-cycle-free.
    import repro.lint.rules  # noqa: F401
