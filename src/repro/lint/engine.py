"""The lint engine: discover files, run every rule, apply suppressions."""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Set

from repro.lint.context import ModuleContext, Project
from repro.lint.findings import Finding
from repro.lint.registry import Rule, registered_rules, rule_by_id
from repro.lint.suppressions import (
    apply_suppressions,
    parse_path_override,
    parse_suppressions,
)

#: Directory fragment excluded from directory walks: fixture files are
#: deliberately broken and would fail any honest run over ``src``.  Passing
#: a fixture as an explicit file path still lints it (the tests do).
_FIXTURES_FRAGMENT = os.path.join("lint", "fixtures")


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted, deduplicated file list."""
    found: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames if name != "__pycache__"
            )
            if _FIXTURES_FRAGMENT in os.path.join(dirpath, ""):
                continue
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.add(os.path.join(dirpath, filename))
    return sorted(found)


def load_module(path: str) -> ModuleContext:
    """Parse one file and fix its logical path (directive-aware)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines = source.splitlines()
    logical = parse_path_override(lines) or _logical_path(path)
    return ModuleContext(path=path, logical=logical, source=source)


def _logical_path(path: str) -> str:
    parts = path.replace(os.sep, "/").split("/")
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index:])
    return parts[-1]


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """The active rule set for a run; ids are validated eagerly."""
    selected = list(select or [])
    ignored = set(ignore or [])
    for rule_id in list(selected) + sorted(ignored):
        rule_by_id(rule_id)  # raises LintConfigError on typos
    rules = registered_rules()
    if selected:
        rules = [rule for rule in rules if rule.rule_id in set(selected)]
    return [rule for rule in rules if rule.rule_id not in ignored]


def run_lint(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint *paths* and return every surviving finding, sorted.

    Suppressions are applied per file after all rules ran, so an unused
    ``allow[...]`` is detected regardless of which rule it names.
    """
    modules = [load_module(path) for path in iter_python_files(paths)]
    project = Project(modules)
    rules = select_rules(select=select, ignore=ignore)
    findings: List[Finding] = []
    for module in modules:
        module_findings: List[Finding] = []
        for rule in rules:
            module_findings.extend(rule.check_module(module, project))
        suppressions = parse_suppressions(module.lines)
        kept, unused = apply_suppressions(
            module.path, suppressions, module_findings
        )
        findings.extend(kept)
        findings.extend(unused)
    return sorted(findings, key=Finding.sort_key)
