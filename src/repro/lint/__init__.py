"""repro.lint: the repo's contracts, mechanically enforced.

The reproduction's value rests on conventions that ordinary tooling cannot
check: seeded ``random.Random`` discipline (serial == 1-worker == N-worker ==
TCP, bit-identical), lock-guarded shared state in the metrics registry /
execution pipeline / index server, "never unpickle socket bytes outside the
legacy codec", and sorted iteration before anything hashed or emitted.  This
package turns each convention into an ``ast``-based rule that fails CI, the
same way protocol v2 turned "trust the socket" into validated codecs.

Dependency-free by design: rules see parsed source only (no imports of the
code under analysis), so the suite runs anywhere the interpreter does.

Usage::

    python -m repro.lint src                 # lint the tree, text output
    python -m repro.lint src --format json   # machine-readable findings
    python -m repro.lint --explain CONC001   # rule doc + good/bad example
"""

from repro.lint.engine import run_lint
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule, registered_rules, rule_by_id

__all__ = [
    "Finding",
    "Rule",
    "register_rule",
    "registered_rules",
    "rule_by_id",
    "run_lint",
]
