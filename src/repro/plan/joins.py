"""The join operator: seven physical algorithms x seven logical join types.

The operator always materializes its right (inner) input, builds an algorithm
specific lookup structure, finds the matches of every left row, and then emits
output rows according to the logical join type.  Every decision point that a
seeded logic bug can corrupt goes through :class:`~repro.plan.physical.ExecutionHooks`:

* ``join_key`` — key normalization before hashing/merging (e.g. the ``0`` vs ``-0``
  hash-join bug of Figure 1(a), the ``varchar``→``double`` semi-join cast of
  Figure 1(b));
* ``null_pad_value`` — padding of the non-preserved side of outer joins (the
  MariaDB join-buffer bugs that turn NULL into an empty string);
* ``flag(effect, trigger)`` — named boolean seams such as
  ``"left_outer_join_as_inner"`` or ``"antijoin_drop_null_key_rows"``.

The effect names understood by this module are listed in ``EFFECT_NAMES``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.expr.ast import EvalContext, Expression
from repro.plan.logical import JoinType
from repro.plan.physical import (
    ExecRow,
    ExecutionHooks,
    JoinAlgorithm,
    PhysicalOperator,
    TriggerContext,
    merge_rows,
    null_row,
)
from repro.sqlvalue.comparison import sql_compare, truth_value
from repro.sqlvalue.datatypes import TypeCategory
from repro.sqlvalue.values import is_null, value_sort_key

EFFECT_NAMES = (
    "left_outer_join_as_inner",
    "right_outer_join_as_inner",
    "outer_join_drop_matched_rows",
    "semijoin_ignore_join_key",
    "semijoin_drop_null_probe",
    "antijoin_drop_null_key_rows",
    "antijoin_unknown_as_match",
    "merge_join_drop_negative_zero",
    "merge_join_drop_last_duplicate",
    "merge_join_empty_result",
    "hash_join_null_key_matches_zero",
    "hash_join_drop_duplicate_build_keys",
    "residual_condition_skipped",
    "inner_join_emit_null_padding",
    "left_outer_emit_spurious_null_row",
)
"""Boolean fault seams consulted by the join operator."""


@dataclass(frozen=True)
class JoinKeySpec:
    """Resolved equi-join key information for one join step."""

    left_column: str
    right_column: str
    domain: TypeCategory


class Join(PhysicalOperator):
    """Physical join of an accumulated left input with a scanned right input."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        join_type: JoinType,
        algorithm: JoinAlgorithm,
        key: Optional[JoinKeySpec],
        hooks: Optional[ExecutionHooks] = None,
        extra_condition: Optional[Expression] = None,
        trigger: Optional[TriggerContext] = None,
        subquery_executor=None,
    ) -> None:
        if join_type is not JoinType.CROSS and key is None:
            raise ExecutionError(f"{join_type.value} join requires an equi-join key")
        self.left = left
        self.right = right
        self.join_type = join_type
        self.algorithm = algorithm
        self.key = key
        self.hooks = hooks or ExecutionHooks()
        self.extra_condition = extra_condition
        self._base_trigger = trigger or TriggerContext()
        self.subquery_executor = subquery_executor

    # ------------------------------------------------------------------ plumbing

    def children(self) -> List[PhysicalOperator]:
        return [self.left, self.right]

    def output_columns(self) -> List[str]:
        columns = list(self.left.output_columns())
        if self.join_type.exposes_right_columns:
            columns.extend(self.right.output_columns())
        return columns

    def describe(self) -> str:
        key = "" if self.key is None else f" on {self.key.left_column}={self.key.right_column}"
        return f"Join[{self.join_type.value}/{self.algorithm.value}]{key}"

    def _trigger(self, has_null_keys: bool) -> TriggerContext:
        base = self._base_trigger
        return TriggerContext(
            algorithm=self.algorithm,
            join_type=self.join_type,
            key_domain=None if self.key is None else self.key.domain,
            materialization=base.materialization,
            semijoin_transform=base.semijoin_transform,
            join_cache_level=base.join_cache_level,
            derived_from_subquery=base.derived_from_subquery,
            has_null_keys=has_null_keys,
            converted_from=base.converted_from,
            disabled_switches=base.disabled_switches,
        )

    # ------------------------------------------------------------------ matching

    def _residual_ok(self, merged: ExecRow, trigger: TriggerContext) -> bool:
        if self.extra_condition is None:
            return True
        if self.hooks.flag("residual_condition_skipped", trigger):
            return True
        ctx = EvalContext(merged, self.subquery_executor)
        return truth_value(self.extra_condition.eval(ctx)) is True

    def _matches_by_hash(
        self, left_rows: List[ExecRow], right_rows: List[ExecRow], trigger: TriggerContext
    ) -> List[List[int]]:
        """Hash-structure based matching (hash / BNLH / BKA / index NL joins)."""
        assert self.key is not None
        table: Dict[Any, List[int]] = {}
        for index, row in enumerate(right_rows):
            value = row[self.key.right_column]
            if is_null(value):
                continue
            key = self.hooks.join_key(value, self.key.domain, trigger)
            bucket = table.setdefault(key, [])
            if bucket and self.hooks.flag("hash_join_drop_duplicate_build_keys", trigger):
                continue
            bucket.append(index)
        null_matches_zero = self.hooks.flag("hash_join_null_key_matches_zero", trigger)
        matches: List[List[int]] = []
        for row in left_rows:
            value = row[self.key.left_column]
            if is_null(value):
                if null_matches_zero:
                    key = self.hooks.join_key(0, self.key.domain, trigger)
                    matches.append(list(table.get(key, ())))
                else:
                    matches.append([])
                continue
            key = self.hooks.join_key(value, self.key.domain, trigger)
            matches.append(list(table.get(key, ())))
        return matches

    def _matches_by_scan(
        self, left_rows: List[ExecRow], right_rows: List[ExecRow], trigger: TriggerContext
    ) -> List[List[int]]:
        """Value-comparison matching (plain / block nested loop joins).

        Keys still pass through the ``join_key`` seam so that plan-independent
        conversion bugs (e.g. the cached-constant bug) corrupt every algorithm,
        while hash-specific triggers simply do not match here.
        """
        assert self.key is not None
        domain = self.key.domain
        right_cast = [
            None
            if is_null(row[self.key.right_column])
            else self.hooks.join_key(row[self.key.right_column], domain, trigger)
            for row in right_rows
        ]
        matches: List[List[int]] = []
        for row in left_rows:
            raw = row[self.key.left_column]
            if is_null(raw):
                matches.append([])
                continue
            value = self.hooks.join_key(raw, domain, trigger)
            found = [
                index
                for index, candidate in enumerate(right_cast)
                if candidate is not None and not is_null(candidate)
                and sql_compare(value, candidate) == 0
            ]
            matches.append(found)
        return matches

    def _matches_by_merge(
        self, left_rows: List[ExecRow], right_rows: List[ExecRow], trigger: TriggerContext
    ) -> List[List[int]]:
        """Sort-merge matching, with merge-join specific fault seams."""
        assert self.key is not None
        domain = self.key.domain
        drop_neg_zero = self.hooks.flag("merge_join_drop_negative_zero", trigger)
        drop_last_dup = self.hooks.flag("merge_join_drop_last_duplicate", trigger)

        def sort_entries(rows: List[ExecRow], column: str) -> List[Tuple[Any, int]]:
            entries = []
            for index, row in enumerate(rows):
                raw = row[column]
                if is_null(raw):
                    continue
                value = self.hooks.join_key(raw, domain, trigger)
                if drop_neg_zero and isinstance(value, float) and value == 0.0 and (
                    str(raw).startswith("-")
                ):
                    continue
                entries.append((value, index))
            entries.sort(key=lambda item: value_sort_key(item[0]))
            return entries

        left_entries = sort_entries(left_rows, self.key.left_column)
        right_entries = sort_entries(right_rows, self.key.right_column)
        matches: List[List[int]] = [[] for _ in left_rows]
        li = ri = 0
        while li < len(left_entries) and ri < len(right_entries):
            lval, lidx = left_entries[li]
            rval, ridx = right_entries[ri]
            cmp = sql_compare(lval, rval)
            if cmp == 0:
                group_end = ri
                while group_end < len(right_entries) and sql_compare(
                    lval, right_entries[group_end][0]
                ) == 0:
                    group_end += 1
                group = [right_entries[k][1] for k in range(ri, group_end)]
                if drop_last_dup and len(group) > 1:
                    group = group[:-1]
                matches[lidx].extend(group)
                li += 1
            elif cmp < 0:
                li += 1
            else:
                ri += 1
        return matches

    def _find_matches(
        self, left_rows: List[ExecRow], right_rows: List[ExecRow], trigger: TriggerContext
    ) -> List[List[int]]:
        if self.algorithm is JoinAlgorithm.SORT_MERGE:
            raw = self._matches_by_merge(left_rows, right_rows, trigger)
        elif self.algorithm.uses_hash_table:
            raw = self._matches_by_hash(left_rows, right_rows, trigger)
        else:
            raw = self._matches_by_scan(left_rows, right_rows, trigger)
        if self.extra_condition is None:
            return raw
        filtered: List[List[int]] = []
        for left_index, candidates in enumerate(raw):
            kept = []
            for right_index in candidates:
                merged = merge_rows(left_rows[left_index], right_rows[right_index])
                if self._residual_ok(merged, trigger):
                    kept.append(right_index)
            filtered.append(kept)
        return filtered

    # ------------------------------------------------------------------ emission

    def rows(self) -> Iterator[ExecRow]:
        left_rows = list(self.left.rows())
        right_rows = list(self.right.rows())
        has_null_keys = False
        if self.key is not None:
            has_null_keys = any(
                is_null(row[self.key.left_column]) for row in left_rows
            ) or any(is_null(row[self.key.right_column]) for row in right_rows)
        trigger = self._trigger(has_null_keys)

        if self.join_type is JoinType.CROSS:
            output = [
                merge_rows(left, right) for left in left_rows for right in right_rows
            ]
            yield from self.hooks.post_rows(output, trigger)
            return

        if self.hooks.flag("merge_join_empty_result", trigger):
            return

        matches = self._find_matches(left_rows, right_rows, trigger)
        emitter = {
            JoinType.INNER: self._emit_inner,
            JoinType.LEFT_OUTER: self._emit_left_outer,
            JoinType.RIGHT_OUTER: self._emit_right_outer,
            JoinType.FULL_OUTER: self._emit_full_outer,
            JoinType.SEMI: self._emit_semi,
            JoinType.ANTI: self._emit_anti,
        }[self.join_type]
        output = emitter(left_rows, right_rows, matches, trigger)
        yield from self.hooks.post_rows(output, trigger)

    def _emit_inner(self, left_rows, right_rows, matches, trigger) -> List[ExecRow]:
        output = []
        emit_padding = self.hooks.flag("inner_join_emit_null_padding", trigger)
        right_columns = self.right.output_columns()
        for left_index, candidates in enumerate(matches):
            for right_index in candidates:
                output.append(merge_rows(left_rows[left_index], right_rows[right_index]))
            if not candidates and emit_padding:
                output.append(
                    merge_rows(left_rows[left_index],
                               null_row(right_columns, self.hooks, trigger))
                )
        return output

    def _emit_left_outer(self, left_rows, right_rows, matches, trigger) -> List[ExecRow]:
        output = []
        right_columns = self.right.output_columns()
        as_inner = self.hooks.flag("left_outer_join_as_inner", trigger)
        drop_matched = self.hooks.flag("outer_join_drop_matched_rows", trigger)
        spurious_null = self.hooks.flag("left_outer_emit_spurious_null_row", trigger)
        for left_index, candidates in enumerate(matches):
            if candidates:
                if not drop_matched:
                    for right_index in candidates:
                        output.append(
                            merge_rows(left_rows[left_index], right_rows[right_index])
                        )
                if spurious_null:
                    output.append(
                        merge_rows(left_rows[left_index],
                                   null_row(right_columns, self.hooks, trigger))
                    )
            elif not as_inner:
                output.append(
                    merge_rows(left_rows[left_index],
                               null_row(right_columns, self.hooks, trigger))
                )
        return output

    def _emit_right_outer(self, left_rows, right_rows, matches, trigger) -> List[ExecRow]:
        output = []
        left_columns = self.left.output_columns()
        as_inner = self.hooks.flag("right_outer_join_as_inner", trigger)
        matched_right = set()
        for left_index, candidates in enumerate(matches):
            for right_index in candidates:
                matched_right.add(right_index)
                output.append(merge_rows(left_rows[left_index], right_rows[right_index]))
        if not as_inner:
            for right_index, right in enumerate(right_rows):
                if right_index not in matched_right:
                    output.append(
                        merge_rows(null_row(left_columns, self.hooks, trigger), right)
                    )
        return output

    def _emit_full_outer(self, left_rows, right_rows, matches, trigger) -> List[ExecRow]:
        output = []
        left_columns = self.left.output_columns()
        right_columns = self.right.output_columns()
        matched_right = set()
        for left_index, candidates in enumerate(matches):
            if candidates:
                for right_index in candidates:
                    matched_right.add(right_index)
                    output.append(
                        merge_rows(left_rows[left_index], right_rows[right_index])
                    )
            else:
                output.append(
                    merge_rows(left_rows[left_index],
                               null_row(right_columns, self.hooks, trigger))
                )
        for right_index, right in enumerate(right_rows):
            if right_index not in matched_right:
                output.append(
                    merge_rows(null_row(left_columns, self.hooks, trigger), right)
                )
        return output

    def _emit_semi(self, left_rows, right_rows, matches, trigger) -> List[ExecRow]:
        output = []
        ignore_key = self.hooks.flag("semijoin_ignore_join_key", trigger)
        drop_null_probe = self.hooks.flag("semijoin_drop_null_probe", trigger)
        for left_index, candidates in enumerate(matches):
            left_value = None
            if self.key is not None:
                left_value = left_rows[left_index][self.key.left_column]
            if ignore_key and right_rows:
                if not (drop_null_probe and is_null(left_value)):
                    output.append(dict(left_rows[left_index]))
                continue
            if candidates:
                output.append(dict(left_rows[left_index]))
        return output

    def _emit_anti(self, left_rows, right_rows, matches, trigger) -> List[ExecRow]:
        output = []
        drop_null = self.hooks.flag("antijoin_drop_null_key_rows", trigger)
        unknown_as_match = self.hooks.flag("antijoin_unknown_as_match", trigger)
        for left_index, candidates in enumerate(matches):
            left_value = None
            if self.key is not None:
                left_value = left_rows[left_index][self.key.left_column]
            if candidates:
                continue
            if is_null(left_value):
                if drop_null or unknown_as_match:
                    continue
            output.append(dict(left_rows[left_index]))
        return output
