"""Non-join physical operators: scan, filter, project/aggregate, sort, limit."""

from __future__ import annotations

from decimal import Decimal
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.expr.ast import ColumnRef, EvalContext, Expression
from repro.plan.logical import (
    AggregateFunction,
    OrderItem,
    SelectItem,
    unique_output_names,
)
from repro.plan.physical import ExecRow, PhysicalOperator
from repro.sqlvalue.comparison import truth_value
from repro.sqlvalue.values import NULL, is_null, normalize_row, value_sort_key
from repro.storage.database import Database

SubqueryExecutor = Optional[Callable[[Any, EvalContext], List[tuple]]]


class TableScan(PhysicalOperator):
    """Full scan of one stored table, emitting qualified column names."""

    def __init__(self, database: Database, table: str, alias: str) -> None:
        self.database = database
        self.table = table
        self.alias = alias
        self._schema = database.table_schema(table)

    def rows(self) -> Iterator[ExecRow]:
        prefix = self.alias
        for stored in self.database.table(self.table).rows:
            yield {f"{prefix}.{name}": stored[name] for name in self._schema.column_names}

    def output_columns(self) -> List[str]:
        return [f"{self.alias}.{name}" for name in self._schema.column_names]

    def describe(self) -> str:
        return f"TableScan({self.table} AS {self.alias})"


class Filter(PhysicalOperator):
    """Keep rows whose predicate evaluates to TRUE (not FALSE, not UNKNOWN)."""

    def __init__(self, child: PhysicalOperator, predicate: Expression,
                 subquery_executor: SubqueryExecutor = None) -> None:
        self.child = child
        self.predicate = predicate
        self.subquery_executor = subquery_executor

    def rows(self) -> Iterator[ExecRow]:
        for row in self.child.rows():
            ctx = EvalContext(row, self.subquery_executor)
            if truth_value(self.predicate.eval(ctx)) is True:
                yield row

    def output_columns(self) -> List[str]:
        return self.child.output_columns()

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate.render()})"


class Project(PhysicalOperator):
    """Projection with optional DISTINCT, GROUP BY and aggregates.

    Aggregates operate on DISTINCT input values (``COUNT(DISTINCT ...)`` style)
    because the DSG oracle compares deduplicated result sets; the query generator
    only emits aggregate forms whose semantics are preserved under DISTINCT.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        items: Sequence[SelectItem],
        group_by: Sequence[ColumnRef] = (),
        distinct: bool = True,
        subquery_executor: SubqueryExecutor = None,
    ) -> None:
        if not items:
            raise ExecutionError("projection requires at least one select item")
        self.child = child
        self.items = list(items)
        self.group_by = list(group_by)
        self.distinct = distinct
        self.subquery_executor = subquery_executor

    def output_columns(self) -> List[str]:
        return unique_output_names(self.items)

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def describe(self) -> str:
        suffix = " DISTINCT" if self.distinct else ""
        return f"Project({', '.join(i.render() for i in self.items)}{suffix})"

    def _has_aggregates(self) -> bool:
        return any(item.aggregate is not None for item in self.items)

    def rows(self) -> Iterator[ExecRow]:
        names = self.output_columns()
        if self._has_aggregates():
            yield from self._aggregate_rows(names)
            return
        seen = set()
        for row in self.child.rows():
            ctx = EvalContext(row, self.subquery_executor)
            values = tuple(item.expression.eval(ctx) for item in self.items)
            if self.distinct:
                key = normalize_row(values)
                if key in seen:
                    continue
                seen.add(key)
            yield dict(zip(names, values))

    def _aggregate_rows(self, names: List[str]) -> Iterator[ExecRow]:
        groups: Dict[tuple, List[ExecRow]] = {}
        order: List[tuple] = []
        for row in self.child.rows():
            ctx = EvalContext(row, self.subquery_executor)
            key = normalize_row(tuple(col.eval(ctx) for col in self.group_by))
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not groups and not self.group_by:
            groups[()] = []
            order.append(())
        for key in order:
            members = groups[key]
            output: Dict[str, Any] = {}
            for position, item in enumerate(self.items):
                output[names[position]] = self._evaluate_item(item, members)
            yield output

    def _evaluate_item(self, item: SelectItem, members: List[ExecRow]) -> Any:
        values = []
        seen = set()
        for row in members:
            ctx = EvalContext(row, self.subquery_executor)
            value = item.expression.eval(ctx)
            if item.aggregate is not None and is_null(value):
                continue
            key = normalize_row((value,))
            if key in seen:
                continue
            seen.add(key)
            values.append(value)
        if item.aggregate is None:
            return values[0] if values else NULL
        if item.aggregate is AggregateFunction.COUNT:
            return len(values)
        if not values:
            return NULL
        if item.aggregate is AggregateFunction.MIN:
            return min(values, key=value_sort_key)
        if item.aggregate is AggregateFunction.MAX:
            return max(values, key=value_sort_key)
        numeric = [v for v in values if isinstance(v, (int, float, Decimal))]
        if not numeric:
            return NULL
        if item.aggregate is AggregateFunction.SUM:
            return sum(numeric)
        return sum(numeric) / len(numeric)


class Sort(PhysicalOperator):
    """ORDER BY over a materialized child output."""

    def __init__(self, child: PhysicalOperator, order_by: Sequence[OrderItem],
                 subquery_executor: SubqueryExecutor = None) -> None:
        self.child = child
        self.order_by = list(order_by)
        self.subquery_executor = subquery_executor

    def rows(self) -> Iterator[ExecRow]:
        materialized = list(self.child.rows())

        def sort_key(row: ExecRow):
            ctx = EvalContext(row, self.subquery_executor)
            keys = []
            for item in self.order_by:
                key = value_sort_key(item.expression.eval(ctx))
                if item.descending:
                    keys.append((-key[0], _invert(key[1])))
                else:
                    keys.append(key)
            return tuple(keys)

        materialized.sort(key=sort_key)
        yield from materialized

    def output_columns(self) -> List[str]:
        return self.child.output_columns()

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def describe(self) -> str:
        return f"Sort({', '.join(i.render() for i in self.order_by)})"


def _invert(value: Any) -> Any:
    """Best-effort inversion for descending sort keys."""
    if isinstance(value, (int, float)):
        return -value
    if isinstance(value, str):
        return tuple(-ord(ch) for ch in value)
    return value


class Limit(PhysicalOperator):
    """LIMIT n."""

    def __init__(self, child: PhysicalOperator, limit: int) -> None:
        if limit < 0:
            raise ExecutionError("LIMIT must be non-negative")
        self.child = child
        self.limit = limit

    def rows(self) -> Iterator[ExecRow]:
        for index, row in enumerate(self.child.rows()):
            if index >= self.limit:
                return
            yield row

    def output_columns(self) -> List[str]:
        return self.child.output_columns()

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.limit})"


class Materialize(PhysicalOperator):
    """Materialize a child's output once and replay it on every iteration.

    Used by the subquery-materialization strategy; it is also a trigger point for
    the "incorrect ... when using materialization strategy" bug class.
    """

    def __init__(self, child: PhysicalOperator) -> None:
        self.child = child
        self._cache: Optional[List[ExecRow]] = None

    def rows(self) -> Iterator[ExecRow]:
        if self._cache is None:
            self._cache = list(self.child.rows())
        return iter(self._cache)

    def output_columns(self) -> List[str]:
        return self.child.output_columns()

    def children(self) -> List[PhysicalOperator]:
        return [self.child]

    def describe(self) -> str:
        return "Materialize"
