"""Physical plan infrastructure: operator base class, rows, and fault hooks.

Execution rows are dictionaries keyed by qualified column name (``"alias.column"``).
Every operator is an iterator factory: :meth:`PhysicalOperator.rows` yields output
rows.  Join operators consult an :class:`ExecutionHooks` object at well-defined
seams (key normalization, NULL padding, semi/anti matching decisions); the default
implementation is bug-free and the simulated DBMS dialects override it to inject
the logic bugs of Table 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

from repro.plan.logical import JoinType
from repro.sqlvalue.casts import cast_for_domain
from repro.sqlvalue.comparison import correct_hash_key
from repro.sqlvalue.datatypes import TypeCategory
from repro.sqlvalue.values import NULL

ExecRow = Dict[str, Any]
"""A row during execution: qualified column name -> value."""


class JoinAlgorithm(enum.Enum):
    """Physical join algorithms implemented by the engines.

    These are the algorithms named in the paper's bug listings and hint sets:
    plain / block nested loop, block nested loop hash (BNLH), batched key access
    (BKA / BKAH), classic hash join, sort-merge join and index nested loop.
    """

    NESTED_LOOP = "nested_loop"
    BLOCK_NESTED_LOOP = "block_nested_loop"
    BLOCK_NESTED_LOOP_HASH = "block_nested_loop_hash"
    BATCHED_KEY_ACCESS = "batched_key_access"
    HASH = "hash"
    SORT_MERGE = "sort_merge"
    INDEX_NESTED_LOOP = "index_nested_loop"

    @property
    def uses_hash_table(self) -> bool:
        """Algorithms that probe a hash structure rather than comparing values."""
        return self in (
            JoinAlgorithm.BLOCK_NESTED_LOOP_HASH,
            JoinAlgorithm.BATCHED_KEY_ACCESS,
            JoinAlgorithm.HASH,
            JoinAlgorithm.INDEX_NESTED_LOOP,
        )


@dataclass(frozen=True)
class TriggerContext:
    """Everything a fault needs to decide whether it fires at a given seam.

    Attributes mirror the trigger conditions quoted in the paper's bug reports:
    which physical algorithm runs, which logical join type, whether subquery
    materialization / semi-join transformation is active, the comparison domain
    of the join keys, and whether the step sits below a subquery.
    """

    algorithm: Optional[JoinAlgorithm] = None
    join_type: Optional[JoinType] = None
    key_domain: Optional[TypeCategory] = None
    materialization: bool = False
    semijoin_transform: bool = True
    join_cache_level: int = 8
    derived_from_subquery: bool = False
    has_null_keys: bool = False
    converted_from: Optional[JoinType] = None
    disabled_switches: frozenset = frozenset()


class ExecutionHooks:
    """Bug-free default implementation of every fault seam.

    The fault-injection layer (:mod:`repro.engine.faults`) subclasses this and
    overrides individual seams when a seeded bug's trigger condition matches the
    :class:`TriggerContext`.
    """

    def join_key(self, value: Any, domain: TypeCategory, trigger: TriggerContext) -> Any:
        """Normalize a join key before hashing / comparison in *domain*."""
        return correct_hash_key(cast_for_domain(value, domain))

    def null_pad_value(self, column: str, trigger: TriggerContext) -> Any:
        """Value used to pad the non-preserved side of an outer join."""
        return NULL

    def flag(self, effect: str, trigger: TriggerContext) -> bool:
        """Generic boolean fault seam; the default engine never misbehaves."""
        return False

    def post_rows(self, rows: List[ExecRow], trigger: TriggerContext) -> List[ExecRow]:
        """Hook applied to an operator's full output (used by result-corruption bugs)."""
        return rows


class PhysicalOperator:
    """Base class of all physical operators."""

    def rows(self) -> Iterator[ExecRow]:
        """Yield output rows."""
        raise NotImplementedError

    def execute(self) -> List[ExecRow]:
        """Materialize the full output."""
        return list(self.rows())

    def output_columns(self) -> List[str]:
        """Qualified column names this operator produces."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description used by EXPLAIN-style plan dumps."""
        return type(self).__name__

    def explain(self, depth: int = 0) -> str:
        """Recursive plan description."""
        lines = ["  " * depth + "-> " + self.describe()]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def children(self) -> List["PhysicalOperator"]:
        """Child operators."""
        return []


def merge_rows(left: Mapping[str, Any], right: Mapping[str, Any]) -> ExecRow:
    """Merge the column maps of two join inputs."""
    merged = dict(left)
    merged.update(right)
    return merged


def null_row(columns: Iterable[str], hooks: ExecutionHooks,
             trigger: TriggerContext) -> ExecRow:
    """Build a padding row for the non-preserved side of an outer join."""
    return {column: hooks.null_pad_value(column, trigger) for column in columns}
