"""Logical query model and physical operators."""

from repro.plan.joins import EFFECT_NAMES, Join, JoinKeySpec
from repro.plan.logical import (
    AggregateFunction,
    AnyQuerySpec,
    CompoundQuerySpec,
    JoinStep,
    JoinType,
    OrderItem,
    QuerySpec,
    SelectItem,
    SetOperator,
    TableRef,
)
from repro.plan.operators import Filter, Limit, Materialize, Project, Sort, TableScan
from repro.plan.physical import (
    ExecRow,
    ExecutionHooks,
    JoinAlgorithm,
    PhysicalOperator,
    TriggerContext,
)

__all__ = [
    "AggregateFunction",
    "AnyQuerySpec",
    "CompoundQuerySpec",
    "EFFECT_NAMES",
    "ExecRow",
    "ExecutionHooks",
    "Filter",
    "Join",
    "JoinAlgorithm",
    "JoinKeySpec",
    "JoinStep",
    "JoinType",
    "Limit",
    "Materialize",
    "OrderItem",
    "PhysicalOperator",
    "Project",
    "QuerySpec",
    "SelectItem",
    "SetOperator",
    "Sort",
    "TableRef",
    "TableScan",
    "TriggerContext",
]
