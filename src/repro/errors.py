"""Exception hierarchy shared by every subsystem of the TQS reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """Raised for inconsistent schema definitions (duplicate columns, bad keys...)."""


class CatalogError(ReproError):
    """Raised when a table or column lookup fails."""


class TypeSystemError(ReproError):
    """Raised for invalid data-type definitions or impossible casts."""


class ExpressionError(ReproError):
    """Raised when an expression tree is malformed or cannot be evaluated."""


class PlanError(ReproError):
    """Raised when a logical query cannot be turned into a physical plan."""


class HintError(ReproError):
    """Raised for unknown or contradictory optimizer hints."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class NormalizationError(ReproError):
    """Raised when schema normalization cannot decompose a wide table."""


class NoiseInjectionError(ReproError):
    """Raised when noise injection cannot be synchronized with the wide table."""


class GroundTruthError(ReproError):
    """Raised when the bitmap-based ground truth cannot be derived for a query."""


class GenerationError(ReproError):
    """Raised when the random-walk query generator cannot produce a query."""


class CampaignError(ReproError):
    """Raised for invalid testing-campaign configurations."""


class TransportError(CampaignError):
    """Raised when a distributed sync transport fails (framing, I/O, protocol)."""


class ProtocolError(TransportError):
    """Raised for malformed, truncated or unauthenticated protocol v2 frames.

    Distinct from its :class:`TransportError` parent so servers can tell
    *bad input* (reject the connection, keep serving) from *transport
    failure* (socket died, peer gone).
    """


class SnapshotError(ReproError):
    """Raised for corrupt, truncated or version-skewed KQE index snapshots."""


class TelemetryError(ReproError):
    """Raised for invalid metric definitions or incompatible snapshot merges."""


class BackendError(ReproError):
    """Raised when a real-DBMS backend adapter fails (connection, load, execute)."""


class RenderError(BackendError):
    """Raised when the IR cannot be rendered as SQL for the target dialect."""
