"""Compare TQS against the SQLancer-style baselines (the Figure 8 experiment).

Runs a short campaign of TQS, PQS, TLP and NoRec against the same simulated
TiDB instance and prints the per-hour diversity and bug-count series side by
side, the way Figure 8 plots them.

Run with:  python examples/compare_with_baselines.py [hours] [queries_per_hour]
"""

from __future__ import annotations

import sys

from repro import CampaignConfig, run_baseline_campaign, run_tqs_campaign
from repro.analysis import compare_final, render_series
from repro.baselines import make_baseline
from repro.engine import SIM_TIDB


def main(hours: int = 8, queries_per_hour: int = 5) -> None:
    config = CampaignConfig(dataset="tpch", dataset_rows=120, hours=hours,
                            queries_per_hour=queries_per_hour, seed=9)
    print(f"Running {hours} simulated hours x {queries_per_hour} queries/hour "
          f"against {SIM_TIDB.name} {SIM_TIDB.version} ...")
    results = {"TQS": run_tqs_campaign(SIM_TIDB, config)}
    for name in ("PQS", "TLP", "NoRec"):
        results[name] = run_baseline_campaign(make_baseline(name), SIM_TIDB, config)

    hours_axis = list(range(1, hours + 1))
    print()
    print(render_series(
        "Query graph diversity (isomorphic sets, cf. Figure 8c)",
        hours_axis,
        {tool: result.series("isomorphic_sets") for tool, result in results.items()},
    ))
    print()
    print(render_series(
        "Cumulative bugs detected (cf. Figure 8g)",
        hours_axis,
        {tool: result.series("bug_count") for tool, result in results.items()},
    ))
    print()
    print("Final comparison (TQS vs baselines):")
    baselines = {name: result for name, result in results.items() if name != "TQS"}
    for metric in ("isomorphic_sets", "bug_count", "bug_type_count"):
        for comparison in compare_final(metric, results["TQS"], baselines):
            print(f"  {metric:<16} TQS={comparison.tqs_value:<5} "
                  f"{comparison.baseline_name}={comparison.baseline_value:<5} "
                  f"(x{comparison.ratio:.1f})")


if __name__ == "__main__":
    hours = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    qph = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(hours, qph)
