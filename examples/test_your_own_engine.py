"""Use TQS as a library to test your own engine / bug hypothesis.

The public API lets a downstream user plug in a custom fault profile (their own
"DBMS under test") and immediately reuse DSG's ground-truth oracle and the TQS
loop.  This example defines a fictional engine whose hash join silently treats
NULL join keys as zero (the X-DB Listing 6 bug class), runs TQS against it, and
then shows how the incident is minimized into a report-ready test case.

Run with:  python examples/test_your_own_engine.py
"""

from __future__ import annotations

from repro import DSG, DSGConfig, Engine, TQS, TQSConfig
from repro.engine import BugSpec, DialectProfile, FaultTrigger
from repro.engine.faults import HASH_BASED_ALGORITHMS
from repro.plan import JoinType

# --- 1. Describe the engine under test as a dialect profile -----------------

MY_ENGINE = DialectProfile(
    name="AcmeDB",
    version="0.9-rc1",
    db_engines_rank=None,
    stack_overflow_rank=None,
    github_stars_thousands=None,
    loc_millions=0.4,
    first_release=2025,
    bugs=(
        BugSpec(
            bug_id=101,
            dbms="AcmeDB",
            seam="flag",
            behavior="hash_join_null_key_matches_zero",
            trigger=FaultTrigger(
                algorithms=HASH_BASED_ALGORITHMS,
                join_types=frozenset({JoinType.INNER, JoinType.LEFT_OUTER}),
            ),
            severity="Critical",
            description="Hash join cannot distinguish NULL join keys from 0.",
        ),
        BugSpec(
            bug_id=102,
            dbms="AcmeDB",
            seam="null_pad",
            behavior="zero",
            trigger=FaultTrigger(
                join_types=frozenset({JoinType.LEFT_OUTER, JoinType.RIGHT_OUTER}),
                requires_disabled_switches=frozenset({"outer_join_with_cache"}),
            ),
            severity="Major",
            description="Outer-join padding writes 0 instead of NULL when the "
                        "outer-join cache is disabled.",
        ),
    ),
)

# --- 2. Point TQS at it ------------------------------------------------------


def main() -> None:
    dsg = DSG(DSGConfig(dataset="kddcup", dataset_rows=150, seed=23))
    engine = Engine(dsg.database, MY_ENGINE)
    tqs = TQS(dsg, engine, TQSConfig(seed=23, reduce_failures=True))
    print(f"Testing {engine.name} on the {dsg.dataset.name} schema "
          f"({', '.join(dsg.ndb.schema.table_names)}) ...")
    log = tqs.run(iterations=60)
    print(log.summary())
    print()
    for bug_id in sorted(log.bug_types):
        bug = next(b for b in MY_ENGINE.bugs if b.bug_id == bug_id)
        print(f"detected seeded fault {bug_id}: {bug.description}")
    print()

    # --- 3. Inspect one minimized failing test case -------------------------
    minimized = [i for i in log.incidents if i.minimized_sql]
    if minimized:
        incident = minimized[0]
        print("Minimized failing query (ready for a bug report):")
        print(incident.minimized_sql)
        print(f"expected {incident.expected_rows} rows, "
              f"observed {incident.observed_rows} (hint set: {incident.hint_name})")
    else:
        print("No incident was minimized in this short run; raise `iterations`.")


if __name__ == "__main__":
    main()
