"""Walk through DSG's data pipeline on the paper's Figure 3/4 running example.

Shows every intermediate artifact of §3: the wide table, the discovered
functional dependencies, the 3NF decomposition with implicit keys and foreign
keys, the RowID map, the join bitmap index, and the effect of noise injection on
all of them -- then recovers the ground truth of the Example 3.5 query
("SELECT price ... WHERE goodsName = 'flower'") from the bitmaps.

Run with:  python examples/inspect_normalization.py
"""

from __future__ import annotations

import random

from repro.analysis import render_table
from repro.dsg import (
    NoiseInjector,
    build_dataset,
    discover_fds,
    normalize,
)
from repro.expr import ColumnRef, Comparison, Literal, column
from repro.plan import JoinStep, JoinType, QuerySpec, SelectItem, TableRef


def show_wide(ndb, limit=8):
    columns = list(ndb.wide.column_names)
    rows = [[i] + [str(ndb.wide.row(i)[c]) for c in columns] for i in range(min(limit, len(ndb.wide)))]
    print(render_table(["RowID"] + columns, rows, title="Wide table (first rows)"))


def show_bitmap(ndb, limit=10):
    tables = [t.name for t in ndb.tables]
    rows = []
    for wide_id in range(min(limit, len(ndb.wide))):
        rows.append([wide_id] + [int(ndb.bitmap.get(t, wide_id)) for t in tables])
    print(render_table(["RowID"] + tables, rows, title="Join bitmap index (Figure 4b)"))


def main() -> None:
    spec = build_dataset("shopping", 40, random.Random(3))

    print("=== Functional dependencies discovered from the data (TANE-style) ===")
    for fd in discover_fds(spec.wide, max_lhs_size=1):
        print("  ", fd.render())
    print()

    print("=== 3NF decomposition (paper Example 3.1) ===")
    ndb = normalize(spec.wide, fds=spec.planted_fds, key_override=spec.key_columns)
    for table in ndb.tables:
        role = "hub" if table.is_hub else "dimension"
        print(f"  {table.name} ({role}): columns={table.columns} "
              f"implicit key={table.implicit_key}")
    for fk in ndb.schema.foreign_keys:
        print(f"  FK: {fk.table}.{fk.columns[0]} -> {fk.ref_table}.{fk.ref_columns[0]}")
    print()
    show_wide(ndb)
    print()
    show_bitmap(ndb)
    print()

    print("=== Noise injection (paper §3.2) and re-synchronization ===")
    report = NoiseInjector(ndb, rng=random.Random(5), epsilon=0.1).inject()
    print(f"injected {report.count} noise values; "
          f"augmented tables: {sorted(report.augmented_tables)}")
    for event in report.events[:5]:
        print(f"  case {event.case}: {event.table}.{event.column}[row {event.row_id}] "
              f"{event.old_value!r} -> {event.new_value!r}")
    print()
    show_bitmap(ndb)
    print()

    print("=== Ground truth via bitmaps (paper Example 3.5) ===")
    goods = next(t.name for t in ndb.tables if "goodsId" in t.implicit_key and not t.is_hub)
    prices = next(t.name for t in ndb.tables if "goodsName" in t.implicit_key)
    query = QuerySpec(
        base=TableRef(goods, goods),
        joins=[JoinStep(TableRef(prices, prices), JoinType.INNER,
                        left_key=ColumnRef(goods, "goodsName"),
                        right_key=ColumnRef(prices, "goodsName"))],
        select=[SelectItem(column(prices, "price"))],
        where=Comparison("=", column(goods, "goodsName"), Literal("flower")),
    )
    print(query.render())
    from repro.dsg import GroundTruthOracle

    truth = GroundTruthOracle(ndb).compute(query)
    print(f"ground-truth bitmap selects wide rows {truth.wide_row_ids[:12]} ...")
    print("ground-truth result:")
    print(truth.result.render())


if __name__ == "__main__":
    main()
