"""Walkthrough: point the TQS pipeline at a real DBMS (stdlib SQLite).

The simulated campaigns check engines we seeded with bugs; this example shows
the other direction — deploying a DSG-generated, noise-injected database into a
real SQLite connection, rendering every generated query to SQLite SQL, and
letting the differential oracle compare SQLite against the reference executor.

The same four steps work for any future adapter (DuckDB, MySQL, Postgres):
implement ``BackendAdapter`` plus a ``SQLDialectSpec`` and everything else is
shared.

Run with:  python examples/test_sqlite_backend.py
"""

from __future__ import annotations

from repro import (
    CampaignConfig,
    DSG,
    DSGConfig,
    SIM_MYSQL,
    SQLiteBackend,
    SimulatedBackend,
    run_differential_campaign,
)
from repro.analysis import render_differential_summary
from repro.backends import SQLITE_DIALECT, SQLRenderer


def main() -> None:
    print("=== 1. Render the IR as real SQL ===")
    dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=120, seed=7))
    renderer = SQLRenderer(SQLITE_DIALECT)
    query = dsg.generate_query()
    print("one generated query, rendered for SQLite:")
    print(renderer.query(query))
    print()

    print("=== 2. Deploy the generated database into SQLite ===")
    backend = SQLiteBackend()
    backend.deploy(dsg.database)
    ddl = renderer.create_table(dsg.database.schema.tables[0])
    print(f"connected to {backend.description}")
    print(f"loaded {dsg.database.total_rows()} rows; first table DDL:")
    print(ddl)
    print()

    print("=== 3. Execute and explain on the real engine ===")
    execution = backend.execute(query)
    print(f"SQLite returned {len(execution.result)} rows; query plan:")
    print(backend.explain(query))
    backend.close()
    print()

    print("=== 4. Differential campaign: SQLite vs the reference executor ===")
    result = run_differential_campaign(
        SQLiteBackend(), CampaignConfig(hours=4, queries_per_hour=10, seed=7)
    )
    print(render_differential_summary(result))
    print()

    print("=== 5. The same loop against a seeded-fault engine ===")
    faulty = run_differential_campaign(
        SimulatedBackend(SIM_MYSQL),
        CampaignConfig(hours=4, queries_per_hour=10, seed=7),
    )
    print(render_differential_summary(faulty))


if __name__ == "__main__":
    main()
