"""Figure 10: effect of parallel search on query generation throughput.

Paper result: with the KQE graph index hosted on a central server, adding DSG
clients (1 to 5) increases the number of queries generated in 24 hours from
~400k to ~1.75M -- close to linear, slightly damped by index synchronization.

Reproduction target: the simulated deployment generates strictly more queries as
clients are added, with the marginal gain per client staying positive but below
perfectly linear scaling.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import ParallelSearchConfig, ParallelSearchSimulator
from benchmarks.conftest import scaled


@pytest.mark.benchmark(group="figure10")
def test_figure10_parallel_search(benchmark):
    """Regenerate the queries-vs-clients sweep of Figure 10."""
    simulator = ParallelSearchSimulator(
        ParallelSearchConfig(dataset="shopping", dataset_rows=scaled(90, 60),
                             per_client_budget=scaled(60, 20), seed=41)
    )

    results = benchmark.pedantic(lambda: simulator.sweep(max_clients=5),
                                 rounds=1, iterations=1)

    rows = [
        [r.clients, r.queries_generated, r.isomorphic_sets, r.sync_operations,
         f"{r.queries_per_second:.1f}"]
        for r in results
    ]
    print()
    print(render_table(
        ["clients", "queries generated", "isomorphic sets", "index syncs", "queries/s"],
        rows,
        title="Figure 10: parallel search (shared KQE index)",
    ))
    totals = [r.queries_generated for r in results]
    assert all(later > earlier for earlier, later in zip(totals, totals[1:])), (
        "adding clients must increase total query throughput"
    )
    assert totals[-1] >= 4 * totals[0] * 0.8, "scaling should be close to linear"
    assert totals[-1] <= 5 * totals[0] + 1, "scaling cannot exceed linear"
    print()
    print("Paper reference (Figure 10): ~400k queries with 1 client growing to "
          "~1.75M with 5 clients over 24 hours.")
