"""Figure 10: effect of parallel search on query generation throughput.

Paper result: with the KQE graph index hosted on a central server, adding DSG
clients (1 to 5) increases the number of queries generated in 24 hours from
~400k to ~1.75M -- close to linear, slightly damped by index synchronization.

Reproduction targets:

* the in-process simulator generates strictly more queries as clients are
  added, with the marginal gain per client staying positive but below
  perfectly linear scaling (the original Figure 10 shape check);
* the **real multi-process worker pool** completes the same fixed campaign
  budget faster than the serial runner, while the merged per-hour series keep
  the serial contract.  The >= 2.5x wall-clock criterion is asserted when the
  machine actually has >= 4 CPU cores — on fewer cores the pool cannot beat
  physics, so the benchmark still reports the measured speedup but only
  asserts correctness.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import render_table, render_worker_pool
from repro.core import (
    CampaignConfig,
    ParallelCampaignConfig,
    ParallelSearchConfig,
    ParallelSearchSimulator,
    run_parallel_tqs_campaign,
    run_tqs_campaign,
)
from repro.engine import SIM_MYSQL
from benchmarks.conftest import scaled


@pytest.mark.benchmark(group="figure10")
def test_figure10_parallel_search(benchmark):
    """Regenerate the queries-vs-clients sweep of Figure 10 (simulator)."""
    simulator = ParallelSearchSimulator(
        ParallelSearchConfig(dataset="shopping", dataset_rows=scaled(90, 60),
                             per_client_budget=scaled(60, 20), seed=41)
    )

    results = benchmark.pedantic(lambda: simulator.sweep(max_clients=5),
                                 rounds=1, iterations=1)

    rows = [
        [r.clients, r.queries_generated, r.isomorphic_sets, r.sync_operations,
         f"{r.queries_per_second:.1f}"]
        for r in results
    ]
    print()
    print(render_table(
        ["clients", "queries generated", "isomorphic sets", "index syncs", "queries/s"],
        rows,
        title="Figure 10: parallel search (shared KQE index)",
    ))
    totals = [r.queries_generated for r in results]
    assert all(later > earlier for earlier, later in zip(totals, totals[1:])), (
        "adding clients must increase total query throughput"
    )
    assert totals[-1] >= 4 * totals[0] * 0.8, "scaling should be close to linear"
    assert totals[-1] <= 5 * totals[0] + 1, "scaling cannot exceed linear"
    print()
    print("Paper reference (Figure 10): ~400k queries with 1 client growing to "
          "~1.75M with 5 clients over 24 hours.")


@pytest.mark.benchmark(group="figure10")
def test_figure10_real_worker_pool(benchmark):
    """Serial runner vs a real 4-process pool on one fixed campaign budget."""
    workers = 4
    config = CampaignConfig(
        dataset="shopping",
        dataset_rows=scaled(100, 60),
        hours=4,
        queries_per_hour=scaled(32, minimum=workers),
        seed=41,
    )

    # Time the serial baseline outside the benchmarked callable so the
    # recorded figure10 stat measures the pool alone, not serial + pool.
    start = time.perf_counter()
    serial = run_tqs_campaign(SIM_MYSQL, config)
    serial_elapsed = time.perf_counter() - start

    pool = benchmark.pedantic(
        lambda: run_parallel_tqs_campaign(
            SIM_MYSQL, config,
            ParallelCampaignConfig(workers=workers, sync_interval=1,
                                   worker_timeout=300.0),
        ),
        rounds=1, iterations=1,
    )

    merged = pool.merged
    speedup = serial_elapsed / max(pool.elapsed_seconds, 1e-9)
    print()
    print(render_worker_pool(pool))
    if pool.telemetry is not None:
        from repro import obs

        print()
        print(obs.render_phase_breakdown(
            obs.MetricsSnapshot.from_dict(pool.telemetry)))
    print()
    print(render_table(
        ["runner", "wall clock (s)", "queries", "isomorphic sets", "bugs",
         "queries/s"],
        [
            ["serial", f"{serial_elapsed:.2f}", serial.final.queries_generated,
             serial.final.isomorphic_sets, serial.final.bug_count,
             f"{serial.final.queries_generated / max(serial_elapsed, 1e-9):.1f}"],
            [f"pool ({workers} procs)", f"{pool.elapsed_seconds:.2f}",
             merged.final.queries_generated, merged.final.isomorphic_sets,
             merged.final.bug_count, f"{pool.queries_per_second:.1f}"],
        ],
        title=f"Figure 10 (real): serial vs {workers}-process pool, "
              f"speedup {speedup:.2f}x on {os.cpu_count()} cores",
    ))

    # Correctness of the merged campaign, independent of core count.
    assert [s.hour for s in merged.samples] == list(range(1, config.hours + 1))
    for metric in ("queries_generated", "isomorphic_sets", "bug_count",
                   "bug_type_count"):
        series = merged.series(metric)
        assert all(later >= earlier
                   for earlier, later in zip(series, series[1:])), metric
    assert (merged.final.queries_generated + merged.final.generations_rejected
            == config.hours * config.queries_per_hour)
    assert merged.final.bug_count > 0, "the pool must still find seeded bugs"

    cores = os.cpu_count() or 1
    # The wall-clock criterion needs both the hardware (>= 4 real cores) and a
    # budget large enough that process spawns and sync barriers amortize: at
    # small TQS_BENCH_SCALE the shards get a handful of queries per hour and
    # overhead dominates, so a miss there says nothing about the pool.
    full_budget = config.queries_per_hour >= 6 * workers
    if cores >= workers and full_budget:
        assert speedup >= 2.5, (
            f"a {workers}-process pool on {cores} cores should finish the "
            f"fixed budget >= 2.5x faster than serial, got {speedup:.2f}x"
        )
    else:
        reason = (f"only {cores} CPU core(s) available" if cores < workers
                  else f"budget too small ({config.queries_per_hour} q/h) "
                       "for overheads to amortize")
        print(f"\nNOTE: {reason}; skipping the >= 2.5x wall-clock assertion "
              f"(measured {speedup:.2f}x).")
