"""Differential campaign throughput against a real DBMS backend (SQLite).

Unlike the simulated campaigns (which execute every hinted variant of a query
in-process), the differential campaign pays for real SQL rendering, a real
engine round-trip and the cross-engine result comparison per query.  This
benchmark measures that end-to-end cost and reports the same per-hour series
the paper-style campaigns produce, plus the sanity property that makes the
numbers meaningful: a correct backend yields zero mismatches.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import (
    DSG,
    Engine,
    CampaignConfig,
    CampaignResult,
    CampaignSpec,
    PipelineConfig,
    QueryCache,
    SIM_MYSQL,
    SimulatedBackend,
    SQLiteBackend,
    obs,
    run_campaign,
    run_differential_campaign,
)
from repro.analysis import render_differential_summary
from repro.core import build_differential_tester, run_campaign_loop


@pytest.mark.benchmark(group="backend-differential")
def test_backend_differential_sqlite(benchmark, campaign_config_factory):
    """24 simulated hours of TQS-generated queries against stdlib SQLite."""
    config = campaign_config_factory(hours=24, queries_per_hour=6,
                                     dataset="shopping", seed=5)

    def run():
        obs.reset_registry()
        start = time.perf_counter()
        campaign = run_differential_campaign(SQLiteBackend(), config)
        return campaign, time.perf_counter() - start

    result, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_differential_summary(result))
    print()
    print(obs.render_phase_breakdown(obs.get_registry().snapshot(),
                                     wall_seconds=wall))
    assert result.final.queries_executed > 0
    assert result.final.bug_count == 0, "false positives against bug-free SQLite"


@pytest.mark.benchmark(group="backend-differential")
def test_backend_differential_simulated_mysql(benchmark, campaign_config_factory):
    """The same loop against the seeded-fault SimMySQL via the adapter layer.

    This is the sensitivity baseline for the SQLite run above: identical
    generator budget, but a backend that is *supposed* to disagree.
    """
    config = campaign_config_factory(hours=24, queries_per_hour=6,
                                     dataset="shopping", seed=5)

    def run():
        return run_differential_campaign(SimulatedBackend(SIM_MYSQL), config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_differential_summary(result))
    assert result.final.bug_count > 0, "seeded faults must be visible differentially"


# ------------------------------------------------- pipelined execution overlap


class _LatencySQLiteBackend(SQLiteBackend):
    """SQLite with a fixed per-query latency, modelling a networked engine.

    An in-memory SQLite round trip is microseconds, which under-represents a
    real client/server target (MySQL, Postgres) where each execute pays
    network and protocol latency.  The added sleep makes the workload
    I/O-bound the way a real differential campaign is — exactly the regime
    the overlapped pipeline exists for.
    """

    def __init__(self, delay_seconds: float) -> None:
        super().__init__()
        self.delay_seconds = delay_seconds

    def execute(self, query):
        time.sleep(self.delay_seconds)
        return super().execute(query)


class _LatencyReferenceEngine(Engine):
    """The reference executor with the same per-query latency model."""

    def __init__(self, database, delay_seconds: float) -> None:
        super().__init__(database)
        self.delay_seconds = delay_seconds

    def execute(self, query, hints=None):
        time.sleep(self.delay_seconds)
        return super().execute(query, hints)


@pytest.mark.benchmark(group="backend-differential-pipeline")
def test_pipeline_overlap_speedup(benchmark):
    """Overlapped pipeline vs serial path on an I/O-bound target: >= 1.5x.

    Both sides carry a 20 ms per-query latency.  The serial path pays
    target + reference per query; the pipeline overlaps them, so the floor of
    the expected speedup is ~2x minus compare/generation time.  Verdict
    equality with the serial path is asserted alongside the throughput gain —
    speed must not buy different results.
    """
    delay = 0.020
    # A fixed workload, deliberately not TQS_BENCH_SCALE-scaled: this is a
    # property measurement (overlap factor on an I/O-bound target).  Tester
    # construction (DSG build, deploy) happens *outside* the timed region —
    # the pipeline overlaps execution, and execution is what is measured.
    config = CampaignConfig(dataset="shopping", dataset_rows=90, hours=3,
                            queries_per_hour=24, seed=5)

    def build_tester(pipeline):
        reference = _LatencyReferenceEngine(DSG(config.dsg_config()).database,
                                            delay)
        return build_differential_tester(_LatencySQLiteBackend(delay), config,
                                         reference=reference,
                                         pipeline=pipeline)

    def run_loop(tester):
        result = CampaignResult(tool="TQS-differential",
                                dbms=tester.backend.name,
                                dataset=config.dataset)
        try:
            return run_campaign_loop(tester, result, config.hours,
                                     config.queries_per_hour)
        finally:
            tester.close()

    serial_tester = build_tester(None)
    start = time.perf_counter()
    serial_result = run_loop(serial_tester)
    serial_seconds = time.perf_counter() - start

    pipelined_tester = build_tester(PipelineConfig(batch_size=8))

    def run_pipelined():
        return run_loop(pipelined_tester)

    start = time.perf_counter()
    pipelined_result = benchmark.pedantic(run_pipelined, rounds=1, iterations=1)
    pipelined_seconds = time.perf_counter() - start

    speedup = serial_seconds / pipelined_seconds
    print()
    print(f"serial {serial_seconds:.3f}s vs pipelined (batch=8) "
          f"{pipelined_seconds:.3f}s -> {speedup:.2f}x overlap speedup")
    assert serial_result.samples == pipelined_result.samples, (
        "pipelined campaign must be bit-identical to the serial path"
    )
    assert speedup >= 1.5, (
        f"expected >= 1.5x overlap speedup on an I/O-bound target, "
        f"got {speedup:.2f}x"
    )


@pytest.mark.benchmark(group="backend-differential-pipeline")
def test_telemetry_overhead_under_five_percent(benchmark):
    """Phase spans and counters must not tax the pipelined campaign.

    Runs the same latency-padded pipelined workload with telemetry enabled
    and disabled — alternating off/on pairs and keeping each side's best
    time, so scheduler noise and thermal drift hit both sides equally — and
    asserts the enabled path is within 5% of the disabled one: the
    zero-cost-enough contract the observability layer promises.
    """
    delay = 0.020
    config = CampaignConfig(dataset="shopping", dataset_rows=90, hours=2,
                            queries_per_hour=16, seed=5)

    def run_once():
        reference = _LatencyReferenceEngine(DSG(config.dsg_config()).database,
                                            delay)
        tester = build_differential_tester(_LatencySQLiteBackend(delay), config,
                                           reference=reference,
                                           pipeline=PipelineConfig(batch_size=8))
        result = CampaignResult(tool="TQS-differential",
                                dbms=tester.backend.name,
                                dataset=config.dataset)
        start = time.perf_counter()
        try:
            result = run_campaign_loop(tester, result, config.hours,
                                       config.queries_per_hour)
        finally:
            tester.close()
        return result, time.perf_counter() - start

    def timed(enabled):
        previous = obs.set_enabled(enabled)
        try:
            obs.reset_registry()
            return run_once()
        finally:
            obs.set_enabled(previous)

    def measure():
        off_result, off_best = timed(False)
        on_result, on_best = timed(True)
        for _ in range(3):
            off_best = min(off_best, timed(False)[1])
            on_best = min(on_best, timed(True)[1])
        return off_result, off_best, on_result, on_best

    off_result, off_seconds, on_result, on_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    overhead = on_seconds / off_seconds - 1.0
    print()
    print(f"telemetry off {off_seconds:.3f}s vs on {on_seconds:.3f}s "
          f"-> {overhead * 100.0:+.2f}% overhead")
    assert on_result.samples == off_result.samples, (
        "telemetry must not change campaign verdicts"
    )
    assert overhead < 0.05, (
        f"telemetry overhead {overhead * 100.0:.2f}% exceeds the 5% budget"
    )


# ------------------------------------------ vectorized executor + query cache


def _reference_seconds(snapshot) -> float:
    """Total ``execute.reference`` span time in *snapshot*."""
    return snapshot.phase_seconds().get("execute.reference", (0.0, 0))[0]


def _campaign_fingerprint(result) -> tuple:
    """Everything a verdict-equality assertion should compare."""
    assert result.bug_log is not None
    return (
        tuple(result.samples),
        tuple(incident.query_sql for incident in result.bug_log.incidents),
    )


@pytest.mark.benchmark(group="backend-differential-executor")
def test_vectorized_cache_reference_speedup(benchmark):
    """Columnar executor + query cache >= 2x on ``execute.reference``.

    The workload is two *identical* campaigns back to back — a repeat
    campaign (rerun benches, re-sharded seeds) is exactly what the
    content-addressed cache exists for.  The baseline pays the row
    interpreter twice; the candidate pays the columnar executor once and
    serves the second run from the cache.  Speedup is compared on the
    ``execute.reference`` phase itself (``phase.seconds``), the share the
    ROADMAP names as the dominant cost, and verdicts must be bit-identical.

    Set ``TQS_BENCH_ARTIFACT`` to a path to dump the before/after phase
    breakdown (the CI bench smoke uploads it).
    """
    config = CampaignConfig(dataset="shopping", dataset_rows=110, hours=6,
                            queries_per_hour=20, seed=5)

    def drive(executor, cache):
        cfg = CampaignConfig(**{**config.__dict__,
                                "reference_executor": executor})
        tester = build_differential_tester(SQLiteBackend(), cfg,
                                           query_cache=cache)
        result = CampaignResult(tool="TQS-differential",
                                dbms=tester.backend.name, dataset=cfg.dataset)
        try:
            return run_campaign_loop(tester, result, cfg.hours,
                                     cfg.queries_per_hour)
        finally:
            tester.close()

    def measure(executor, with_cache):
        obs.reset_registry()
        cache = QueryCache() if with_cache else None
        results = [drive(executor, cache) for _ in range(2)]
        return results, obs.get_registry().snapshot()

    baseline_results, baseline_snapshot = measure("row", False)

    def run_candidate():
        return measure("columnar", True)

    candidate_results, candidate_snapshot = benchmark.pedantic(
        run_candidate, rounds=1, iterations=1
    )

    for base, cand in zip(baseline_results, candidate_results):
        assert _campaign_fingerprint(base) == _campaign_fingerprint(cand), (
            "columnar+cache campaign must be bit-identical to the row baseline"
        )

    baseline_ref = _reference_seconds(baseline_snapshot)
    candidate_ref = _reference_seconds(candidate_snapshot)
    speedup = baseline_ref / max(candidate_ref, 1e-9)
    before = obs.render_phase_breakdown(baseline_snapshot)
    after = obs.render_phase_breakdown(candidate_snapshot)
    print()
    print("--- row executor, no cache (2 identical campaigns) ---")
    print(before)
    print("--- columnar executor + shared query cache ---")
    print(after)
    print(f"execute.reference: {baseline_ref:.3f}s -> {candidate_ref:.3f}s "
          f"({speedup:.2f}x)")

    artifact = os.environ.get("TQS_BENCH_ARTIFACT", "")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            handle.write("row executor, no cache (2 identical campaigns)\n")
            handle.write(before + "\n\n")
            handle.write("columnar executor + shared query cache\n")
            handle.write(after + "\n\n")
            handle.write(f"execute.reference speedup: {speedup:.2f}x "
                         f"({baseline_ref:.3f}s -> {candidate_ref:.3f}s)\n")

    assert speedup >= 2.0, (
        f"expected >= 2x on execute.reference from the vectorized executor "
        f"plus cache, got {speedup:.2f}x"
    )


@pytest.mark.benchmark(group="backend-differential-executor")
def test_executor_cache_verdicts_serial_and_pooled(benchmark):
    """Row/no-cache == columnar/cache, on the serial path AND the 2-worker pool.

    The speedup test above covers the serial repeat-campaign case; this one
    pins the determinism contract on the multiprocessing pool, where each
    shard builds its own executor and per-shard cache from the wire-shipped
    :class:`CampaignConfig`.
    """
    base = dict(kind="differential", backend="sqlite", dataset_rows=80,
                hours=2, queries_per_hour=16, seed=7)
    fast = dict(reference_executor="columnar", use_query_cache=True)

    def run_all():
        serial_row = run_campaign(CampaignSpec(**base))
        serial_fast = run_campaign(CampaignSpec(**base, **fast))
        pooled_row = run_campaign(CampaignSpec(**base, workers=2))
        pooled_fast = run_campaign(CampaignSpec(**base, **fast, workers=2))
        return serial_row, serial_fast, pooled_row, pooled_fast

    serial_row, serial_fast, pooled_row, pooled_fast = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    assert _campaign_fingerprint(serial_row) == _campaign_fingerprint(serial_fast), (
        "serial verdicts must not depend on executor or cache"
    )
    assert _campaign_fingerprint(pooled_row.merged) == _campaign_fingerprint(
        pooled_fast.merged
    ), "pooled verdicts must not depend on executor or cache"
    print()
    print(f"serial: {serial_row.final.queries_executed} comparisons, "
          f"pooled: {pooled_row.merged.final.queries_executed} comparisons — "
          "verdicts identical across executor/cache settings")
