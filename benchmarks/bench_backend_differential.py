"""Differential campaign throughput against a real DBMS backend (SQLite).

Unlike the simulated campaigns (which execute every hinted variant of a query
in-process), the differential campaign pays for real SQL rendering, a real
engine round-trip and the cross-engine result comparison per query.  This
benchmark measures that end-to-end cost and reports the same per-hour series
the paper-style campaigns produce, plus the sanity property that makes the
numbers meaningful: a correct backend yields zero mismatches.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_differential_summary
from repro.backends import SimulatedBackend, SQLiteBackend
from repro.core import run_differential_campaign
from repro.engine import SIM_MYSQL


@pytest.mark.benchmark(group="backend-differential")
def test_backend_differential_sqlite(benchmark, campaign_config_factory):
    """24 simulated hours of TQS-generated queries against stdlib SQLite."""
    config = campaign_config_factory(hours=24, queries_per_hour=6,
                                     dataset="shopping", seed=5)

    def run():
        return run_differential_campaign(SQLiteBackend(), config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_differential_summary(result))
    assert result.final.queries_executed > 0
    assert result.final.bug_count == 0, "false positives against bug-free SQLite"


@pytest.mark.benchmark(group="backend-differential")
def test_backend_differential_simulated_mysql(benchmark, campaign_config_factory):
    """The same loop against the seeded-fault SimMySQL via the adapter layer.

    This is the sensitivity baseline for the SQLite run above: identical
    generator budget, but a backend that is *supposed* to disagree.
    """
    config = campaign_config_factory(hours=24, queries_per_hour=6,
                                     dataset="shopping", seed=5)

    def run():
        return run_differential_campaign(SimulatedBackend(SIM_MYSQL), config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_differential_summary(result))
    assert result.final.bug_count > 0, "seeded faults must be visible differentially"
