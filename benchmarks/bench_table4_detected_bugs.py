"""Table 4: bugs detected by TQS in 24 (simulated) hours on the four DBMSs.

Paper result: 115 bugs total in 24 hours — 31 (MySQL), 30 (MariaDB), 31 (TiDB),
23 (X-DB) — which root-cause analysis groups into 7 / 5 / 5 / 3 bug types.

Reproduction target (shape, not absolute numbers): TQS finds bugs in every
simulated DBMS within the budget, and the per-DBMS bug-type counts approach the
seeded 7 / 5 / 5 / 3 profile.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_bug_type_details, render_detected_bugs
from repro.core import run_tqs_campaign
from repro.engine import ALL_DIALECTS


@pytest.mark.benchmark(group="table4")
def test_table4_detected_bugs(benchmark, campaign_config_factory):
    """Run the 24-hour TQS campaign against all four simulated DBMSs."""

    def run_all():
        results = {}
        for index, dialect in enumerate(ALL_DIALECTS):
            config = campaign_config_factory(hours=24, queries_per_hour=6,
                                             dataset="shopping", seed=5 + index)
            results[dialect.name] = run_tqs_campaign(dialect, config)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(render_detected_bugs(results))
    for dialect in ALL_DIALECTS:
        print()
        print(render_bug_type_details(results[dialect.name], dialect))
    print()
    print("Paper reference (Table 4): 31/30/31/23 bugs of 7/5/5/3 types.")

    for dialect in ALL_DIALECTS:
        final = results[dialect.name].final
        assert final.bug_count > 0, f"no bugs found in {dialect.name}"
        assert final.bug_type_count <= dialect.bug_type_count
    total_types = sum(results[d.name].final.bug_type_count for d in ALL_DIALECTS)
    assert total_types >= 12, "campaign should reveal most of the 20 seeded bug types"
