"""Figure 9: bug count vs bug types over a 48-hour run on MySQL.

Paper result: the number of detected bugs keeps growing roughly linearly with
testing time, while the number of distinct bug *types* saturates early -- most
bugs are caused by a small set of improperly implemented operators.

Reproduction target: on SimMySQL the cumulative bug count keeps growing through
the 48 simulated hours (high linearity score) while the bug-type curve reaches
its final value well before the end of the run.
"""

from __future__ import annotations

import pytest

from repro.analysis import growth_is_monotonic, linearity_score, render_series, saturation_hour
from repro.core import run_tqs_campaign
from repro.engine import SIM_MYSQL


@pytest.mark.benchmark(group="figure9")
def test_figure9_bug_types_vs_bug_counts(benchmark, campaign_config_factory):
    """Regenerate the 48-hour MySQL series of Figure 9."""

    def run_campaign():
        config = campaign_config_factory(hours=48, queries_per_hour=5,
                                         dataset="shopping", seed=31)
        return run_tqs_campaign(SIM_MYSQL, config)

    result = benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    hours = list(range(1, 49))
    print()
    print(render_series(
        "Figure 9 (SimMySQL, 48 simulated hours)",
        hours,
        {"bug count": result.series("bug_count"),
         "bug types": result.series("bug_type_count")},
    ))
    counts = result.series("bug_count")
    types = result.series("bug_type_count")
    assert growth_is_monotonic(counts) and growth_is_monotonic(types)
    assert counts[-1] > types[-1], "many bugs should share few root causes"
    type_saturation = saturation_hour(types)
    assert type_saturation is not None and type_saturation <= 36, (
        "bug types should saturate well before the end of the run"
    )
    assert counts[-1] > counts[len(counts) // 2], (
        "bug count should keep growing in the second half of the run"
    )
    print()
    print(f"bug-count linearity score: {linearity_score(counts):.3f} "
          f"(paper: near-linear growth); bug types saturate at hour {type_saturation}.")
