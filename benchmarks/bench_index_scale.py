"""KQE index at scale: sublinear KNN, O(1) novelty checks, packed sync wire.

Builds a 10^5-entry index of clustered synthetic embeddings (the regime a
multi-day, multi-worker campaign reaches) and measures the three costs the
persistent-index work targets:

* ``nearest_by_vector`` p50 — the vectorized+LSH path against an inline
  reimplementation of the legacy per-entry Python scan (list of numpy rows,
  one dot product per entry).  Acceptance: >= 10x.
* LSH recall@5 against the exact scan, with tie tolerance (a candidate
  counts as recalled if its similarity ties the exact 5th-best).
  Acceptance: >= 0.95.
* SYNC payload size: packed base64-float32 entries vs legacy JSON arrays,
  bytes and encode+decode time.  Acceptance: >= 3x byte reduction.

Also reports the novelty-check (``contains_label``) p50 — the per-generated-
query hot path — and the phase breakdown.  Set ``TQS_BENCH_ARTIFACT`` to a
path to dump the numbers as JSON (the CI bench smoke uploads it).

Synthetic data uses ``numpy.random.default_rng``: benchmarks sit outside the
campaign determinism closure, and a fixed seed keeps runs comparable anyway.
"""

from __future__ import annotations

import json
import os
import statistics
import time

import numpy as np
import pytest

from repro import obs
from repro.distributed import wire
from repro.kqe import GraphIndex
from repro.kqe.store import quantize_to_float32

from benchmarks.conftest import scaled

DIMS = 64
CLUSTERS = 200


def clustered_vectors(count: int, rng: np.random.Generator) -> np.ndarray:
    """Non-negative, cluster-structured embeddings like real KQE output."""
    centers = rng.random((CLUSTERS, DIMS)) * 4.0
    assignment = rng.integers(0, CLUSTERS, size=count)
    noise = rng.random((count, DIMS)) * 0.5
    return centers[assignment] + noise


def legacy_nearest(rows, norms, query: np.ndarray, k: int):
    """The pre-matrix index's scan: one Python-loop cosine per stored entry."""
    query_norm = float(np.linalg.norm(query))
    scored = []
    for index, (row, norm) in enumerate(zip(rows, norms)):
        denominator = norm * query_norm
        if denominator <= 0.0:
            scored.append((index, 0.0))
            continue
        scored.append((index, float(np.dot(row, query)) / denominator))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored[:k]


def p50(samples) -> float:
    return statistics.median(samples)


@pytest.mark.benchmark(group="index-scale")
def test_index_scale_knn_and_wire(benchmark):
    entries = scaled(100_000, minimum=20_000)
    rng = np.random.default_rng(7)
    vectors = clustered_vectors(entries, rng)
    # Queries are perturbations of stored entries: the production lookup is
    # "how close is this new query graph to ones we already explored".
    picks = rng.integers(0, entries, size=64)
    queries = vectors[picks] + rng.random((64, DIMS)) * 0.25
    k = 5

    obs.reset_registry()
    index = GraphIndex(lsh_min_size=4096)
    with obs.span("bench.build_index"):
        for position in range(entries):
            index.add_embedding(vectors[position], f"L{position % 1000}")
    assert index.embedder.dimensions == DIMS

    # Legacy storage layout: a Python list of per-entry arrays with norms.
    legacy_rows = [vectors[position] for position in range(entries)]
    legacy_norms = [float(np.linalg.norm(row)) for row in legacy_rows]

    def measure_knn():
        legacy_times = []
        with obs.span("bench.legacy_scan"):
            for query in queries[:8]:
                start = time.perf_counter()
                legacy_nearest(legacy_rows, legacy_norms, query, k)
                legacy_times.append(time.perf_counter() - start)
        fast_times = []
        with obs.span("bench.vectorized_lsh"):
            for query in queries:
                start = time.perf_counter()
                index.nearest_by_vector(query, k=k)
                fast_times.append(time.perf_counter() - start)
        return p50(legacy_times), p50(fast_times)

    legacy_p50, fast_p50 = benchmark.pedantic(measure_knn, rounds=1, iterations=1)
    speedup = legacy_p50 / max(fast_p50, 1e-12)

    # Recall@5 with tie tolerance: approximate hits count when they tie the
    # exact 5th-best similarity (distinct rows at identical cosine are
    # interchangeable neighbours).
    recalled = total = 0
    for query in queries:
        exact = index.nearest_by_vector(query, k=k, approximate=False)
        approx = index.nearest_by_vector(query, k=k)
        floor = exact[-1][1] - 1e-12
        exact_ids = {position for position, _ in exact}
        for position, score in approx:
            if position in exact_ids or score >= floor:
                recalled += 1
        total += k
    recall = recalled / total

    # Novelty-check hot path: one membership probe per generated query.
    novelty_times = []
    for probe in range(2000):
        start = time.perf_counter()
        index.contains_label(f"L{probe % 1500}")
        novelty_times.append(time.perf_counter() - start)
    novelty_p50 = p50(novelty_times)

    # SYNC wire: one realistic round's batch, packed vs legacy JSON.
    batch = [
        (quantize_to_float32([float(c) for c in vectors[row]]), f"L{row % 1000}")
        for row in range(2000)
    ]

    def json_round_trip():
        text = json.dumps(wire.encode_entries(batch))
        wire.decode_entries(json.loads(text))
        return len(text)

    def packed_round_trip():
        text = json.dumps(wire.encode_entries_packed(batch))
        wire.decode_entries(json.loads(text))
        return len(text)

    start = time.perf_counter()
    json_bytes = json_round_trip()
    json_seconds = time.perf_counter() - start
    start = time.perf_counter()
    packed_bytes = packed_round_trip()
    packed_seconds = time.perf_counter() - start
    byte_reduction = json_bytes / packed_bytes

    snapshot = obs.get_registry().snapshot()
    counters = snapshot.counters
    breakdown = obs.render_phase_breakdown(snapshot)
    report = {
        "entries": entries,
        "dims": DIMS,
        "knn": {
            "legacy_scan_p50_ms": legacy_p50 * 1e3,
            "vectorized_lsh_p50_ms": fast_p50 * 1e3,
            "speedup": speedup,
            "recall_at_5": recall,
            "lsh_queries": counters.get("index.knn.lsh_queries", 0),
            "exact_queries": counters.get("index.knn.exact_queries", 0),
        },
        "novelty_check_p50_us": novelty_p50 * 1e6,
        "sync_wire": {
            "batch_entries": len(batch),
            "json_bytes": json_bytes,
            "packed_bytes": packed_bytes,
            "byte_reduction": byte_reduction,
            "json_round_trip_ms": json_seconds * 1e3,
            "packed_round_trip_ms": packed_seconds * 1e3,
        },
    }

    print()
    print(breakdown)
    print(
        f"nearest_by_vector p50: legacy scan {legacy_p50 * 1e3:.2f}ms -> "
        f"vectorized+LSH {fast_p50 * 1e3:.3f}ms ({speedup:.1f}x), "
        f"recall@5 {recall:.3f}"
    )
    print(f"contains_label p50: {novelty_p50 * 1e6:.2f}us")
    print(
        f"SYNC batch ({len(batch)} entries): JSON {json_bytes} B / "
        f"{json_seconds * 1e3:.1f}ms vs packed {packed_bytes} B / "
        f"{packed_seconds * 1e3:.1f}ms ({byte_reduction:.2f}x smaller)"
    )

    artifact = os.environ.get("TQS_BENCH_ARTIFACT", "")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    assert report["knn"]["lsh_queries"] > 0, "LSH prefilter never engaged"
    assert recall >= 0.95, f"LSH recall@5 {recall:.3f} below the 0.95 bar"
    assert speedup >= 10.0, (
        f"expected >= 10x over the legacy per-entry scan at {entries} entries, "
        f"got {speedup:.1f}x"
    )
    assert byte_reduction >= 3.0, (
        f"expected >= 3x SYNC payload reduction, got {byte_reduction:.2f}x"
    )
    assert novelty_p50 < 1e-3, "novelty check must stay O(1) at scale"
