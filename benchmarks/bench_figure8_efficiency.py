"""Figure 8(e-h): bug-detection efficiency of TQS vs the SQLancer baselines.

Paper result: within 24 hours TQS finds 20-30 bugs per DBMS while PQS / TLP /
NoRec find at most a handful, tracking the diversity advantage of Figure 8(a-d).

Reproduction target: TQS's cumulative bug count dominates every baseline's on
every DBMS at the end of the campaign, and TQS finds strictly more bug *types*
than any baseline overall.
"""

from __future__ import annotations

import pytest

from repro.analysis import growth_is_monotonic, render_series
from repro.baselines import make_baseline
from repro.core import run_baseline_campaign, run_tqs_campaign
from repro.engine import ALL_DIALECTS

BASELINES_PER_DBMS = {
    "SimMySQL": ("PQS", "TLP"),
    "SimMariaDB": ("NoRec",),
    "SimTiDB": ("TLP",),
    "SimXDB": ("PQS", "TLP"),
}


@pytest.mark.benchmark(group="figure8")
def test_figure8_bug_detection_efficiency(benchmark, campaign_config_factory):
    """Regenerate the four bug-count-vs-hours panels of Figure 8."""

    def run_all():
        panels = {}
        for index, dialect in enumerate(ALL_DIALECTS):
            config = campaign_config_factory(hours=24, queries_per_hour=5,
                                             dataset="tpch", seed=21 + index)
            series = {"TQS": run_tqs_campaign(dialect, config)}
            for name in BASELINES_PER_DBMS[dialect.name]:
                series[name] = run_baseline_campaign(make_baseline(name), dialect, config)
            panels[dialect.name] = series
        return panels

    panels = benchmark.pedantic(run_all, rounds=1, iterations=1)

    hours = list(range(1, 25))
    total_tqs_types = 0
    total_baseline_types = 0
    for dbms, series in panels.items():
        print()
        print(render_series(
            f"Figure 8 ({dbms}): cumulative bugs per hour",
            hours,
            {tool: result.series("bug_count") for tool, result in series.items()},
        ))
        tqs = series["TQS"].final
        total_tqs_types += series["TQS"].final.bug_type_count
        for tool, result in series.items():
            assert growth_is_monotonic(result.series("bug_count"))
            if tool != "TQS":
                total_baseline_types = max(total_baseline_types,
                                           result.final.bug_type_count)
                assert tqs.bug_count >= result.final.bug_count, (
                    f"TQS should find at least as many bugs as {tool} on {dbms}"
                )
        assert tqs.bug_count > 0
    assert total_tqs_types > total_baseline_types
    print()
    print("Paper reference (Figure 8e-h): TQS finds 20-30 bugs per DBMS in 24h; "
          "baselines stay in single digits.")
