"""Design ablation: join-bitmap compression and sparsity-ordered intersection.

DESIGN.md calls out two implementation choices from paper §3.1/§3.4 — WAH
run-length compression for sparse bitmaps and the jump-intersection order that
starts from the sparsest bitmap.  This benchmark quantifies both on synthetic
bitmaps shaped like the ones the campaigns produce.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import render_table
from repro.dsg import Bitmap, JoinBitmapIndex, wah_decode, wah_encode
from repro.dsg.bitmap import wah_compressed_words


def make_index(rows: int, densities) -> JoinBitmapIndex:
    rng = random.Random(7)
    index = JoinBitmapIndex(rows, [f"T{i}" for i in range(1, len(densities) + 1)])
    for table, density in zip(index.table_names, densities):
        for row in range(rows):
            if rng.random() < density:
                index.set(table, row)
    return index


@pytest.mark.benchmark(group="bitmap")
def test_wah_compression_ratio_and_roundtrip(benchmark):
    """WAH words needed for sparse vs dense bitmaps (paper §3.1)."""
    rows = 31 * 200
    rng = random.Random(3)
    sparse = Bitmap.from_indices(rows, [rng.randrange(rows) for _ in range(20)])
    dense = Bitmap.from_indices(rows, [i for i in range(rows) if rng.random() < 0.5])

    words = benchmark(lambda: wah_encode(sparse))
    assert wah_decode(words, rows) == sparse

    rows_table = [
        ["sparse (20 set bits)", sparse.count(), wah_compressed_words(sparse)],
        ["dense (~50% set bits)", dense.count(), wah_compressed_words(dense)],
    ]
    print()
    print(render_table(["bitmap", "set bits", "WAH words"], rows_table,
                       title="WAH compression of join bitmaps"))
    assert wah_compressed_words(sparse) < wah_compressed_words(dense)


@pytest.mark.benchmark(group="bitmap")
def test_sparsity_ordered_intersection(benchmark):
    """Jump intersection: starting from the sparsest bitmap (paper §3.4)."""
    index = make_index(rows=2000, densities=(0.9, 0.6, 0.02))

    result = benchmark(lambda: index.intersect(index.table_names))

    ordered = index.sparsity_ranked_tables(index.table_names)
    assert ordered[0] == "T3"  # the sparsest bitmap drives the intersection
    manual = index.bitmap("T1") & index.bitmap("T2") & index.bitmap("T3")
    assert result == manual
    print()
    print(render_table(
        ["table", "set bits"],
        [[name, index.bitmap(name).count()] for name in ordered],
        title="Sparsity-ranked intersection order",
    ))
