"""Figure 8(a-d): query-graph diversity of TQS vs the SQLancer baselines.

Paper result: over 24 hours TQS explores far more isomorphic query-graph sets
than PQS / TLP / NoRec on every DBMS (hundreds of thousands vs tens of
thousands), because the baselines generate many unusable or structurally
repetitive joins.

Reproduction target: at the end of the simulated campaign, TQS's isomorphic-set
count dominates every baseline's on every DBMS, and every diversity series grows
monotonically with time.
"""

from __future__ import annotations

import pytest

from repro.analysis import growth_is_monotonic, render_series
from repro.baselines import make_baseline
from repro.core import run_baseline_campaign, run_tqs_campaign
from repro.engine import ALL_DIALECTS

# The paper pairs each DBMS with the baselines SQLancer supports on it.
BASELINES_PER_DBMS = {
    "SimMySQL": ("PQS", "TLP"),
    "SimMariaDB": ("NoRec",),
    "SimTiDB": ("TLP",),
    "SimXDB": ("PQS", "TLP"),
}


@pytest.mark.benchmark(group="figure8")
def test_figure8_query_graph_diversity(benchmark, campaign_config_factory):
    """Regenerate the four diversity-vs-hours panels of Figure 8."""

    def run_all():
        panels = {}
        for index, dialect in enumerate(ALL_DIALECTS):
            config = campaign_config_factory(hours=24, queries_per_hour=5,
                                             dataset="shopping", seed=11 + index)
            series = {"TQS": run_tqs_campaign(dialect, config)}
            for name in BASELINES_PER_DBMS[dialect.name]:
                series[name] = run_baseline_campaign(make_baseline(name), dialect, config)
            panels[dialect.name] = series
        return panels

    panels = benchmark.pedantic(run_all, rounds=1, iterations=1)

    hours = list(range(1, 25))
    for dbms, series in panels.items():
        print()
        print(render_series(
            f"Figure 8 ({dbms}): isomorphic sets explored per hour",
            hours,
            {tool: result.series("isomorphic_sets") for tool, result in series.items()},
        ))
        tqs_final = series["TQS"].final.isomorphic_sets
        for tool, result in series.items():
            assert growth_is_monotonic(result.series("isomorphic_sets"))
            if tool != "TQS":
                assert tqs_final >= result.final.isomorphic_sets, (
                    f"TQS should dominate {tool} on {dbms} diversity"
                )
    print()
    print("Paper reference (Figure 8a-d): TQS reaches ~400k isomorphic sets in "
          "24h, several times more than PQS/TLP/NoRec.")
