"""Table 3: the tested (simulated) DBMSs.

The paper's Table 3 lists the popularity, code size and first release of the
tested systems.  Our reproduction replaces them with the four simulated dialects
(same metadata, plus the number of seeded bug types standing in for the unknown
latent bugs of the real systems).  The benchmark also measures how quickly a
fault-injected engine can be instantiated, since every campaign cell does this.
"""

from __future__ import annotations

from repro.analysis import render_dbms_overview
from repro.dsg import DSG, DSGConfig
from repro.engine import ALL_DIALECTS, Engine


def test_table3_dbms_overview(benchmark):
    """Print Table 3 and benchmark per-dialect engine construction."""
    dsg = DSG(DSGConfig(dataset="shopping", dataset_rows=80, seed=1))

    def build_engines():
        return [Engine(dsg.database, dialect) for dialect in ALL_DIALECTS]

    engines = benchmark(build_engines)
    assert len(engines) == 4
    print()
    print(render_dbms_overview())
    print()
    print("Paper reference (Table 3): MySQL rank 2 / 3.8M LOC / 1995, "
          "MariaDB rank 12 / 3.6M LOC / 2009, TiDB rank 96 / 0.8M LOC / 2017.")
