"""Shared configuration for the benchmark harness.

Every benchmark simulates the paper's 24-hour campaigns with a per-hour query
budget.  The budget scales with the ``TQS_BENCH_SCALE`` environment variable
(default 1.0): raise it for longer, higher-fidelity runs, lower it for a quick
smoke pass.  Shapes of the reported tables/series are stable across scales; only
absolute magnitudes change.
"""

from __future__ import annotations

import os

import pytest

from repro.core import CampaignConfig


def bench_scale() -> float:
    """The global benchmark scale factor."""
    try:
        return max(0.1, float(os.environ.get("TQS_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an integer budget by the global factor."""
    return max(minimum, int(round(value * bench_scale())))


@pytest.fixture(scope="session")
def campaign_config_factory():
    """Factory for campaign configurations with the benchmark's default budgets."""

    def make(hours: int = 24, queries_per_hour: int = 6, dataset: str = "shopping",
             **overrides) -> CampaignConfig:
        return CampaignConfig(
            dataset=dataset,
            dataset_rows=scaled(110, minimum=60),
            hours=hours,
            queries_per_hour=scaled(queries_per_hour),
            seed=overrides.pop("seed", 5),
            **overrides,
        )

    return make
