"""Table 5: ablation over TQS's components (noise, ground truth, KQE).

Paper result (per DBMS): removing noise injection roughly halves the bug count,
removing the ground-truth oracle (falling back to differential testing) loses
the plan-independent bugs, and removing KQE halves the explored diversity.

Reproduction target (shape): on every DBMS the full TQS configuration finds at
least as many bug types as each ablated variant; TQS!Noise loses bugs that need
corner-case values; TQS!GT cannot report any plan-independent seeded bug.  The
KQE diversity gap does not reproduce at laptop scale (see EXPERIMENTS.md), so
only a no-collapse check is asserted for TQS!KQE.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_ablation
from repro.core import run_ablation
from repro.engine import ALL_DIALECTS


@pytest.mark.benchmark(group="table5")
def test_table5_ablation(benchmark, campaign_config_factory):
    """Run the four Table 5 variants against every simulated DBMS."""

    def run_all():
        results = {}
        for index, dialect in enumerate(ALL_DIALECTS):
            config = campaign_config_factory(hours=12, queries_per_hour=6,
                                             dataset="tpch", seed=51 + index)
            results[dialect.name] = run_ablation(dialect, config)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(render_ablation(results))
    print()
    print("Paper reference (Table 5): e.g. MySQL — TQS 460k/31, TQS!Noise 460k/14, "
          "TQS!GT 460k/21, TQS!KQE 228k/16.")

    for dialect in ALL_DIALECTS:
        variants = results[dialect.name]
        full = variants["TQS"].final
        assert full.bug_count > 0
        # Ground-truth ablation: differential testing must not report any
        # plan-independent seeded bug.
        plan_independent = dialect.active_faults().plan_independent_ids()
        gt_ablation_types = variants["TQS!GT"].bug_log.bug_types
        assert not (gt_ablation_types & plan_independent), (
            f"{dialect.name}: differential testing reported a plan-independent bug"
        )
        # The full configuration should dominate the ablations on bug types
        # (allowing ties, since budgets are small).
        for variant in ("TQS!Noise", "TQS!GT"):
            assert full.bug_type_count >= variants[variant].final.bug_type_count - 1, (
                f"{dialect.name}: {variant} unexpectedly beats full TQS"
            )
        # KQE ablation: diversity must not collapse (paper shows a 2x gap that
        # needs much larger query spaces to materialize).
        assert variants["TQS!KQE"].final.isomorphic_sets > 0
